"""Unit tests for intent translation (Fig. 2) and periodic-ECN expansion."""

import pytest

from repro.core.config import ConfigError, DataPacketEvent, PeriodicEcnIntent, TrafficConfig
from repro.core.intent import QpMetadata, expand_periodic_events, translate_events
from repro.net.addressing import ip_to_int
from repro.rdma.verbs import Verb


def metadata(index=1, verb=Verb.WRITE, req_ipsn=1001, resp_ipsn=3002):
    return QpMetadata(
        index=index,
        requester_ip=ip_to_int("10.0.0.1"),
        requester_qpn=0xFE,
        requester_ipsn=req_ipsn,
        responder_ip=ip_to_int("10.0.0.2"),
        responder_qpn=0xEA,
        responder_ipsn=resp_ipsn,
        verb=verb,
    )


class TestFig2Example:
    def test_paper_example_translation(self):
        # Fig. 2: requester 10.0.0.1/0xfe/1001, responder 10.0.0.2/0xea/
        # 3002, intent "4th packet of QP 1" => entry (10.0.0.1, 10.0.0.2,
        # 0xea, 1004).
        entries = translate_events(
            [metadata()],
            [DataPacketEvent(qpn=1, psn=4, type="ecn")],
        )
        assert len(entries) == 1
        entry = entries[0]
        assert entry.src_ip == ip_to_int("10.0.0.1")
        assert entry.dst_ip == ip_to_int("10.0.0.2")
        assert entry.dst_qpn == 0xEA
        assert entry.psn == 1004
        assert entry.action == "ecn"
        assert entry.iteration == 1


class TestDirections:
    def test_write_data_flows_requester_to_responder(self):
        src, dst, qpn = metadata(verb=Verb.WRITE).data_direction()
        assert src == ip_to_int("10.0.0.1")
        assert dst == ip_to_int("10.0.0.2")
        assert qpn == 0xEA

    def test_send_matches_write(self):
        assert metadata(verb=Verb.SEND).data_direction() == \
               metadata(verb=Verb.WRITE).data_direction()

    def test_read_data_flows_responder_to_requester(self):
        # §3.3: for Read the responder generates the data packets.
        src, dst, qpn = metadata(verb=Verb.READ).data_direction()
        assert src == ip_to_int("10.0.0.2")
        assert dst == ip_to_int("10.0.0.1")
        assert qpn == 0xFE

    def test_read_psn_still_uses_requester_space(self):
        # Read responses reuse the request's PSN range.
        meta = metadata(verb=Verb.READ, req_ipsn=500)
        entries = translate_events([meta],
                                   [DataPacketEvent(qpn=1, psn=3, type="drop")])
        assert entries[0].psn == 502


class TestPsnArithmetic:
    def test_first_packet_is_ipsn(self):
        assert metadata().absolute_data_psn(1) == 1001

    def test_relative_offsets(self):
        assert metadata().absolute_data_psn(100) == 1100

    def test_wraparound(self):
        meta = metadata(req_ipsn=0xFFFFFF)
        assert meta.absolute_data_psn(1) == 0xFFFFFF
        assert meta.absolute_data_psn(2) == 0

    def test_zero_relative_rejected(self):
        with pytest.raises(ValueError):
            metadata().absolute_data_psn(0)


class TestMultiConnection:
    def test_events_map_to_their_connection(self):
        metas = [metadata(index=1), metadata(index=2, req_ipsn=7000)]
        entries = translate_events(metas, [
            DataPacketEvent(qpn=1, psn=4, type="ecn"),
            DataPacketEvent(qpn=2, psn=5, type="drop"),
            DataPacketEvent(qpn=2, psn=5, type="drop", iter=2),
        ])
        assert entries[0].psn == 1004
        assert entries[1].psn == 7004
        assert entries[2].psn == 7004
        assert entries[2].iteration == 2

    def test_unknown_connection_rejected(self):
        with pytest.raises(ConfigError):
            translate_events([metadata()],
                             [DataPacketEvent(qpn=3, psn=1, type="drop")])


class TestPeriodicExpansion:
    def test_every_50th_packet(self):
        traffic = TrafficConfig(num_connections=2, message_size=102400,
                                mtu=1024, num_msgs_per_qp=2)  # 200 packets
        events = expand_periodic_events(traffic, [PeriodicEcnIntent(qpn=1, period=50)])
        assert [e.psn for e in events] == [1, 51, 101, 151]
        assert all(e.type == "ecn" and e.qpn == 1 for e in events)

    def test_start_offset(self):
        traffic = TrafficConfig(message_size=10240, mtu=1024)  # 100 packets
        events = expand_periodic_events(traffic,
                                     [PeriodicEcnIntent(qpn=1, period=40, start=10)])
        assert [e.psn for e in events] == [10, 50, 90]

    def test_empty_intents(self):
        assert expand_periodic_events(TrafficConfig(), []) == []

    def test_period_longer_than_stream(self):
        traffic = TrafficConfig(message_size=1024, num_msgs_per_qp=1)
        events = expand_periodic_events(traffic, [PeriodicEcnIntent(qpn=1, period=50)])
        assert [e.psn for e in events] == [1]
