"""Integration tests: injected drops / ECN / corruption and recovery."""

import pytest

from conftest import corrupt, drop, ecn, run_scenario
from repro.net.headers import Opcode
from repro.net.packet import EventType


class TestSingleDropWrite:
    def _result(self):
        return run_scenario(verb="write", num_msgs=3, message_size=4096,
                            events=(drop(psn=2),), seed=5)

    def test_exactly_one_drop_event_in_trace(self):
        result = self._result()
        drops = [p for p in result.trace if p.was_dropped]
        assert len(drops) == 1
        assert drops[0].iteration == 1

    def test_dropped_packet_never_reaches_responder(self):
        result = self._result()
        sent = result.trace.data_packets()
        delivered = result.responder_counters["rx_packets"]
        # Responder misses exactly the dropped copy.
        total_toward_responder = len(sent)
        assert delivered == total_toward_responder - 1 + len(
            [p for p in result.trace if p.opcode == Opcode.RDMA_READ_REQUEST])

    def test_nak_generated_for_gap(self):
        result = self._result()
        naks = result.trace.naks()
        assert len(naks) == 1
        dropped = next(p for p in result.trace if p.was_dropped)
        assert naks[0].psn == dropped.psn

    def test_go_back_n_retransmission(self):
        result = self._result()
        dropped = next(p for p in result.trace if p.was_dropped)
        # Retransmitted packets are those whose PSN reappears; note that
        # ITER is sticky (Fig. 3), so follow-on messages also carry
        # ITER 2 — identify the replay by PSN duplication instead.
        seen = set()
        retrans = []
        for pkt in result.trace.data_packets():
            if pkt.psn in seen:
                retrans.append(pkt)
            seen.add(pkt.psn)
        # Rewind starts exactly at the dropped PSN and replays the rest
        # of the message (packets 2,3,4 of the first 4-packet message).
        assert retrans[0].psn == dropped.psn
        assert len(retrans) == 3
        assert all(p.iteration == 2 for p in retrans)

    def test_all_messages_still_complete(self):
        result = self._result()
        assert result.ok
        assert all(m.ok for m in result.traffic_log.all_messages)

    def test_requester_counters_reflect_recovery(self):
        result = self._result()
        req = result.requester_counters
        resp = result.responder_counters
        assert req["packet_seq_err"] == 1          # one NAK received
        assert req["retransmitted_packets"] == 3   # go-back-N replay
        assert resp["out_of_sequence"] >= 1
        assert resp["nak_sent"] == 1
        assert req["local_ack_timeout_err"] == 0   # fast retransmission


class TestDoubleDrop:
    def test_dropping_retransmission_forces_timeout(self):
        # Listing 2's scenario: drop PSN 5 in rounds 1 AND 2.
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(drop(psn=2), drop(psn=2, iteration=2)),
                              timeout_cfg=10, seed=6)
        drops = [p for p in result.trace if p.was_dropped]
        assert len(drops) == 2
        assert {p.iteration for p in drops} == {1, 2}
        assert result.requester_counters["local_ack_timeout_err"] >= 1
        assert all(m.ok for m in result.traffic_log.all_messages)

    def test_third_round_recovers(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(drop(psn=2), drop(psn=2, iteration=2)),
                              timeout_cfg=10, seed=6)
        dropped_psn = next(p for p in result.trace if p.was_dropped).psn
        final = [p for p in result.trace.data_packets()
                 if p.psn == dropped_psn and not p.was_dropped]
        assert final, "dropped PSN must eventually get through"


class TestTailDrop:
    def test_last_packet_drop_recovers_by_timeout(self):
        # Dropping the LAST packet leaves no later packet to expose the
        # gap: only the retransmission timer can recover (§6.3 setup).
        result = run_scenario(verb="write", num_msgs=1, message_size=4096,
                              events=(drop(psn=4),), timeout_cfg=10, seed=7)
        assert result.requester_counters["local_ack_timeout_err"] == 1
        assert len(result.trace.naks()) == 0
        assert all(m.ok for m in result.traffic_log.all_messages)


class TestDropOnRead:
    def test_read_recovers_via_reissued_request(self):
        result = run_scenario(verb="read", num_msgs=2, message_size=4096,
                              events=(drop(psn=2),), seed=8)
        assert all(m.ok for m in result.traffic_log.all_messages)
        requests = result.trace.by_opcode(Opcode.RDMA_READ_REQUEST)
        # 2 messages + 1 re-issued request for the gap.
        assert len(requests) == 3
        dropped = next(p for p in result.trace if p.was_dropped)
        reissue = [r for r in requests if r.psn == dropped.psn]
        assert len(reissue) == 1

    def test_read_drop_direction_is_responder_to_requester(self):
        result = run_scenario(verb="read", num_msgs=1, message_size=4096,
                              events=(drop(psn=2),), seed=8)
        dropped = next(p for p in result.trace if p.was_dropped)
        meta = result.metadata[0]
        assert dropped.record.ip.src_ip == meta.responder_ip
        assert dropped.record.ip.dst_ip == meta.requester_ip
        assert dropped.opcode.is_read_response


class TestEcnInjection:
    def test_marked_packet_visible_in_trace(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(ecn(psn=3),), seed=9)
        marked = [p for p in result.trace if p.was_ecn_marked]
        assert len(marked) == 1
        assert marked[0].event_type == EventType.ECN

    def test_cnp_generated_in_response(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(ecn(psn=3),), seed=9)
        cnps = result.trace.cnps()
        assert len(cnps) == 1
        meta = result.metadata[0]
        # CNP flows from the NP (responder) back to the RP (requester).
        assert cnps[0].record.ip.src_ip == meta.responder_ip
        assert cnps[0].record.ip.dst_ip == meta.requester_ip
        assert cnps[0].record.dest_qp == meta.requester_qpn

    def test_counters_track_marks_and_cnps(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(ecn(psn=3),), seed=9)
        assert result.responder_counters["ecn_marked_packets"] == 1
        assert result.responder_counters["cnp_sent"] == 1
        assert result.requester_counters["cnp_handled"] == 1

    def test_ecn_does_not_trigger_retransmission(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(ecn(psn=3),), seed=9)
        assert result.requester_counters["retransmitted_packets"] == 0
        assert len(result.trace.naks()) == 0


class TestCorruption:
    def test_corrupted_packet_dropped_at_receiver(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(corrupt(psn=2),), seed=10)
        assert result.responder_counters["rx_icrc_errors"] == 1

    def test_corruption_recovered_like_a_loss(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(corrupt(psn=2),), seed=10)
        assert all(m.ok for m in result.traffic_log.all_messages)
        assert result.requester_counters["retransmitted_packets"] >= 1

    def test_corrupt_event_type_in_trace(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(corrupt(psn=2),), seed=10)
        flagged = [p for p in result.trace
                   if p.event_type == EventType.CORRUPT]
        assert len(flagged) == 1


class TestMultiConnectionEvents:
    def test_listing2_event_set(self):
        # ECN on 4th pkt of conn 1; drop 5th of conn 2 twice (iter 1+2).
        result = run_scenario(verb="write", num_connections=2, num_msgs=2,
                              message_size=10240,
                              events=(ecn(qpn=1, psn=4),
                                      drop(qpn=2, psn=5),
                                      drop(qpn=2, psn=5, iteration=2)),
                              timeout_cfg=10, seed=11)
        assert all(m.ok for m in result.traffic_log.all_messages)
        marked = [p for p in result.trace if p.was_ecn_marked]
        dropped = [p for p in result.trace if p.was_dropped]
        assert len(marked) == 1
        assert len(dropped) == 2

    def test_events_only_affect_target_connection(self):
        result = run_scenario(verb="write", num_connections=2, num_msgs=2,
                              message_size=10240,
                              events=(drop(qpn=2, psn=5),), seed=12)
        meta1 = result.metadata[0]
        conn1 = (meta1.requester_ip, meta1.responder_ip, meta1.responder_qpn)
        # Connection 1's packets are untouched.
        assert all(p.event_type == EventType.NONE
                   for p in result.trace.data_packets(conn1))
