"""Unit tests for the vendor behaviour profiles (DESIGN.md table)."""

import pytest

from repro.rdma.profiles import (
    CX4_LX,
    CX5,
    CX6_DX,
    E810,
    IDEAL,
    PROFILES,
    CnpLimitMode,
    get_profile,
)
from repro.sim.engine import US, MS


class TestLookup:
    def test_all_four_nics_plus_reference(self):
        assert set(PROFILES) == {"ideal", "cx4", "cx5", "cx6", "e810"}

    def test_get_profile_case_insensitive(self):
        assert get_profile("CX4") is CX4_LX
        assert get_profile("e810") is E810

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("cx7")


class TestPaperEncodedBehaviours:
    def test_fig8_nack_generation_ordering(self):
        # Write: all NICs low; Read: CX4 ~150 µs, E810 ~83 ms.
        assert CX5.nack_gen_write_ns < 5 * US
        assert CX6_DX.nack_gen_write_ns < 5 * US
        assert CX4_LX.nack_gen_read_ns == 150 * US
        assert E810.nack_gen_read_ns == 83 * MS

    def test_fig9_nack_reaction_ordering(self):
        # CX5/CX6 best (2-8 µs); CX4 hundreds of µs.
        assert CX5.nack_react_write_ns < 10 * US
        assert CX6_DX.nack_react_write_ns < 10 * US
        assert CX4_LX.nack_react_write_ns > 100 * US
        assert E810.nack_react_write_ns > 50 * US

    def test_ets_bug_only_on_cx6(self):
        assert not CX6_DX.ets_work_conserving
        for profile in (IDEAL, CX4_LX, CX5, E810):
            assert profile.ets_work_conserving

    def test_noisy_neighbor_only_on_cx4(self):
        assert CX4_LX.pipeline_stall_read_loss_threshold == 12
        for profile in (IDEAL, CX5, CX6_DX, E810):
            assert profile.pipeline_stall_read_loss_threshold is None

    def test_cnp_rate_limit_scopes(self):
        # §6.3: CX4 per destination IP; CX5/CX6 per port; E810 per QP.
        assert CX4_LX.cnp_limit_mode == CnpLimitMode.PER_IP
        assert CX5.cnp_limit_mode == CnpLimitMode.PER_PORT
        assert CX6_DX.cnp_limit_mode == CnpLimitMode.PER_PORT
        assert E810.cnp_limit_mode == CnpLimitMode.PER_QP

    def test_e810_hidden_cnp_interval(self):
        assert E810.hidden_cnp_interval_ns == 50 * US
        assert not E810.min_time_between_cnps_configurable
        for profile in (CX4_LX, CX5, CX6_DX):
            assert profile.hidden_cnp_interval_ns == 0
            assert profile.min_time_between_cnps_configurable

    def test_migreq_bug_pairing(self):
        # E810 sends MigReq=0; CX5 has the slow path on MigReq=0.
        assert E810.migreq_initial == 0
        assert CX5.migreq_zero_slow_path
        assert CX5.migreq_initial == 1
        assert not E810.migreq_zero_slow_path

    def test_counter_bugs(self):
        assert "cnp_sent" in E810.stuck_counters
        assert "implied_nak_seq_err" in CX4_LX.stuck_counters
        assert not IDEAL.stuck_counters
        assert not CX5.stuck_counters

    def test_adaptive_retrans_support(self):
        # All CX NICs support adaptive retransmission; E810 does not.
        for profile in (CX4_LX, CX5, CX6_DX):
            assert profile.supports_adaptive_retrans
            assert profile.adaptive_timeout_ladder
            assert profile.adaptive_extra_retries[1] >= 1
        assert not E810.supports_adaptive_retrans

    def test_cx6_ladder_matches_measured_values(self):
        # timeout=14 => base 67.1 ms; measured ladder: 5.6/4.1/8.4/16.7/
        # 25.1/67.1/134.2 ms.
        base_ms = 4096 * (2 ** 14) / 1e6
        ladder_ms = [round(base_ms * f, 1) for f in CX6_DX.adaptive_timeout_ladder]
        assert ladder_ms == [5.6, 4.2, 8.4, 16.8, 25.2, 67.1, 134.2]

    def test_bandwidths(self):
        assert CX4_LX.default_bandwidth_gbps == 40.0
        for profile in (CX5, CX6_DX, E810):
            assert profile.default_bandwidth_gbps == 100.0


class TestOverrides:
    def test_with_overrides_returns_new_profile(self):
        fixed = CX6_DX.with_overrides(ets_work_conserving=True)
        assert fixed.ets_work_conserving
        assert not CX6_DX.ets_work_conserving
        assert fixed.name == CX6_DX.name

    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            CX5.nack_gen_write_ns = 0

    def test_ideal_profile_has_no_jitter(self):
        assert IDEAL.latency_jitter_frac == 0.0
