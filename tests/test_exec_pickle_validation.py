"""Eager spawn-picklability validation in ParallelRunner.

A non-picklable payload used to surface as an opaque worker crash
followed by retries; now the runner rejects it before any submission,
naming the offending field.
"""

import threading

import pytest

from repro.exec import ParallelRunner, UnpicklableTaskError
from repro.exec.runner import _unpicklable_path
from repro.exec.tasks import echo_task


def _module_task(payload):
    return payload


class TestTaskFnValidation:
    def test_lambda_rejected_at_construction_with_pool(self):
        with pytest.raises(UnpicklableTaskError) as exc_info:
            ParallelRunner(lambda p: p, workers=2)
        assert "task_fn" in str(exc_info.value)
        assert "module-level" in str(exc_info.value)

    def test_lambda_fine_for_serial_runner(self):
        # repro-lint: ignore[EXEC001] — workers=1 never crosses a
        # process boundary; the in-process path may take any callable.
        with ParallelRunner(lambda p: p + 1, workers=1) as runner:
            assert runner.map([1])[0].value == 2

    def test_module_function_accepted(self):
        with ParallelRunner(_module_task, workers=2) as runner:
            assert runner.workers == 2


class TestPayloadValidation:
    def test_unpicklable_payload_rejected_before_submission(self):
        lock = threading.Lock()  # locks cannot cross a spawn boundary
        with ParallelRunner(echo_task, workers=2) as runner:
            with pytest.raises(UnpicklableTaskError) as exc_info:
                runner.map([{"n": 1}, {"n": 2, "guard": lock}])
        message = str(exc_info.value)
        assert "payloads[1]['guard']" in message
        # Nothing ran: the campaign failed fast, not after a crash.
        assert runner.stats.tasks_completed == 0
        assert runner.stats.worker_crashes == 0

    def test_offending_field_named_in_nested_structures(self):
        lock = threading.Lock()
        path, reason = _unpicklable_path(
            {"config": {"inner": [1, {"cb": lock}]}}, "payloads[0]")
        assert path == "payloads[0]['config']['inner'][1]['cb']"
        assert "TypeError" in reason or "cannot" in reason.lower()

    def test_dataclass_field_named(self):
        import dataclasses

        @dataclasses.dataclass
        class Payload:
            name: str
            guard: object

        path, _reason = _unpicklable_path(
            Payload(name="x", guard=threading.Lock()), "payloads[3]")
        assert path == "payloads[3].guard"

    def test_picklable_payloads_pass(self):
        assert _unpicklable_path({"config": [1, 2], "w": (3,)},
                                 "payloads[0]") is None

    def test_serial_runner_skips_validation(self):
        # workers=1 never pickles, so "unpicklable" payloads are legal.
        lock = threading.Lock()
        with ParallelRunner(_module_task, workers=1) as runner:
            outcome = runner.map([{"guard": lock}])[0]
        assert outcome.ok and outcome.value["guard"] is lock

    def test_dead_pool_fallback_skips_validation(self, monkeypatch):
        # Once the pool is unusable the campaign runs in-process, where
        # picklability is irrelevant — late validation would lose work.
        import concurrent.futures

        def boom(*args, **kwargs):
            raise OSError("no semaphores on this platform")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            boom)
        with ParallelRunner(_module_task, workers=2) as runner:
            runner.map([{"ok": 1}])  # kills the pool path
            assert runner._pool_dead
            outcome = runner.map([{"guard": threading.Lock()}])[0]
        assert outcome.ok
