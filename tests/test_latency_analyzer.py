"""Tests for the latency analyzer and the trace formatter."""

from conftest import drop, run_scenario
from repro.core.analyzers import (
    ack_rtt_samples,
    read_service_samples,
    stream_rate_bps,
    summarize,
)
from repro.core.trace import format_trace


class TestAckRtt:
    def test_one_sample_per_message(self):
        result = run_scenario(nic="ideal", verb="write", num_msgs=5,
                              message_size=4096)
        samples = ack_rtt_samples(result.trace)
        assert len(samples) == 1  # one connection
        values = next(iter(samples.values()))
        assert len(values) == 5

    def test_rtt_magnitude_matches_testbed(self):
        # switch->host propagation 500 ns each way + RX pipeline + ACK
        # generation (~1 µs each on the ideal profile): a few µs total.
        result = run_scenario(nic="ideal", verb="write", num_msgs=5,
                              message_size=4096)
        values = next(iter(ack_rtt_samples(result.trace).values()))
        assert all(2_000 < v < 10_000 for v in values)

    def test_per_connection_separation(self):
        result = run_scenario(nic="ideal", verb="write", num_connections=3,
                              num_msgs=2, message_size=4096)
        samples = ack_rtt_samples(result.trace)
        assert len(samples) == 3
        assert all(len(v) == 2 for v in samples.values())

    def test_rtt_useful_for_deviation_correction(self):
        # §4: "pre-measuring the RTT of the testbed" compensates the
        # half-RTT deviation of switch-side timestamps.
        result = run_scenario(nic="cx5", verb="write", num_msgs=5,
                              message_size=4096)
        values = next(iter(ack_rtt_samples(result.trace).values()))
        summary = summarize(values)
        assert summary is not None
        assert summary.count == 5
        assert summary.min_ns <= summary.mean_ns <= summary.max_ns

    def test_summarize_empty(self):
        assert summarize([]) is None


class TestReadService:
    def test_one_sample_per_read(self):
        result = run_scenario(nic="ideal", verb="read", num_msgs=4,
                              message_size=4096)
        samples = read_service_samples(result.trace)
        assert len(samples) == 4
        assert all(s > 0 for s in samples)

    def test_no_reads_no_samples(self):
        result = run_scenario(nic="ideal", verb="write", num_msgs=2,
                              message_size=4096)
        assert read_service_samples(result.trace) == []


class TestStreamRate:
    def test_line_rate_stream(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=5,
                              message_size=102400, barrier_sync=False,
                              tx_depth=4)
        conn = result.trace.connections()[0]
        rate = stream_rate_bps(result.trace, conn)
        assert rate is not None
        # Payload rate at ~100 Gbps line rate (headers excluded).
        assert 70e9 < rate < 100e9

    def test_too_few_packets(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=1,
                              message_size=512)
        conn = result.trace.connections()[0]
        assert stream_rate_bps(result.trace, conn) is None


class TestFormatTrace:
    def test_contains_key_fields(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=2,
                              message_size=4096, events=(drop(psn=2),), seed=5)
        text = format_trace(result.trace)
        assert "RDMA_WRITE_FIRST" in text
        assert "[DROP]" in text
        assert " NAK" in text
        assert "iter=2" in text
        assert "10.0.0.1" in text

    def test_limit_truncates(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=3,
                              message_size=4096)
        text = format_trace(result.trace, limit=5)
        assert len(text.splitlines()) == 6  # 5 packets + "more" line
        assert "more packets" in text

    def test_connection_filter(self):
        result = run_scenario(nic="ideal", verb="write", num_connections=2,
                              num_msgs=1, message_size=2048)
        conn = result.trace.connections()[0]
        text = format_trace(result.trace, conn_key=conn)
        assert all("WRITE" in line for line in text.splitlines())

    def test_empty_trace(self):
        from repro.core.trace import reconstruct_trace

        assert format_trace(reconstruct_trace([])) == ""
