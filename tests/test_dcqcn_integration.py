"""End-to-end DCQCN tests: ECN marks actually slow the sender down."""

from conftest import run_scenario
from repro.core.config import (
    DumperPoolConfig,
    HostConfig,
    PeriodicEcnIntent,
    RoceParameters,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import run_test


def marked_run(nic="cx5", rp_enable=True, np_enable=True, period=10,
               seed=33, msgs=6):
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=msgs,
        message_size=102400, mtu=1024, barrier_sync=False, tx_depth=2,
        periodic_events=(PeriodicEcnIntent(qpn=1, period=period),),
    )
    roce = RoceParameters(dcqcn_rp_enable=rp_enable,
                          dcqcn_np_enable=np_enable)
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",), roce=roce),
        responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",), roce=roce),
        traffic=traffic, seed=seed, dumpers=DumperPoolConfig(num_servers=3),
    )
    return run_test(config)


class TestRateReduction:
    def test_marks_reduce_goodput(self):
        clean = run_scenario(nic="cx5", verb="write", num_msgs=6,
                             message_size=102400, barrier_sync=False,
                             tx_depth=2, seed=33)
        marked = marked_run()
        assert marked.traffic_log.total_goodput_bps() < \
            0.5 * clean.traffic_log.total_goodput_bps()

    def test_rp_disabled_ignores_cnps(self):
        # Listing 1's dcqcn-rp-enable=False: CNPs still flow, the
        # sender just does not react.
        result = marked_run(rp_enable=False)
        assert result.requester_counters["cnp_handled"] > 0
        assert result.traffic_log.total_goodput_bps() > 50e9

    def test_np_disabled_generates_no_cnps(self):
        result = marked_run(np_enable=False)
        assert len(result.trace.cnps()) == 0
        assert result.responder_counters["cnp_sent"] == 0
        # Marks are still observed and counted.
        assert result.responder_counters["ecn_marked_packets"] > 0

    def test_cnp_flow_is_bidirectionally_accounted(self):
        result = marked_run()
        sent = result.responder_counters["cnp_sent"]
        handled = result.requester_counters["cnp_handled"]
        on_wire = len(result.trace.cnps())
        assert sent == on_wire
        assert handled == on_wire  # control packets are never dropped

    def test_inter_packet_gaps_grow_after_cut(self):
        result = marked_run(msgs=4)
        meta = result.metadata[0]
        conn = (meta.requester_ip, meta.responder_ip, meta.responder_qpn)
        data = result.trace.data_packets(conn)
        first_gaps = [b.timestamp_ns - a.timestamp_ns
                      for a, b in zip(data[:10], data[1:11])]
        late = data[len(data) // 2:]
        late_gaps = [b.timestamp_ns - a.timestamp_ns
                     for a, b in zip(late, late[1:])]
        # Paced traffic after the cuts is visibly slower than the
        # line-rate burst at the start.
        assert max(late_gaps) > 5 * min(g for g in first_gaps if g > 0)


class TestReadCongestion:
    def test_read_response_stream_is_rate_limited(self):
        # For Read, the NP is the requester and the RP is the responder.
        traffic = TrafficConfig(
            num_connections=1, rdma_verb="read", num_msgs_per_qp=4,
            message_size=102400, mtu=1024, barrier_sync=False, tx_depth=2,
            periodic_events=(PeriodicEcnIntent(qpn=1, period=10),),
        )
        config = TestConfig(
            requester=HostConfig(nic_type="cx5", ip_list=("10.0.0.1/24",)),
            responder=HostConfig(nic_type="cx5", ip_list=("10.0.0.2/24",)),
            traffic=traffic, seed=34, dumpers=DumperPoolConfig(num_servers=3),
        )
        result = run_test(config)
        # CNPs flow requester -> responder (toward the data sender).
        meta = result.metadata[0]
        for cnp in result.trace.cnps():
            assert cnp.record.ip.src_ip == meta.requester_ip
            assert cnp.record.ip.dst_ip == meta.responder_ip
        assert result.requester_counters["cnp_sent"] > 0
        assert result.responder_counters["cnp_handled"] > 0
