"""Property-based tests for the congestion/scheduling mechanisms."""

from hypothesis import given, settings, strategies as st

from repro.rdma.dcqcn import CnpRateLimiter, DcqcnParams, DcqcnRp
from repro.rdma.ets import EtsQueueConfig, EtsScheduler
from repro.rdma.profiles import CX4_LX, CX5, E810
from repro.sim.engine import Simulator, US
from repro.switch.events import ANY_ITERATION, EventEntry
from repro.switch.tables import MatchActionTable


class TestCnpLimiterInvariants:
    @given(gaps=st.lists(st.integers(0, 20_000), min_size=1, max_size=60),
           interval_us=st.integers(1, 50))
    def test_allowed_cnps_never_violate_interval(self, gaps, interval_us):
        limiter = CnpRateLimiter(CX5, configured_interval_ns=interval_us * US)
        now = 0
        allowed_times = []
        for gap in gaps:
            now += gap
            if limiter.allow(now, qp_num=1, src_ip=1):
                allowed_times.append(now)
        for a, b in zip(allowed_times, allowed_times[1:]):
            assert b - a >= interval_us * US

    @given(events=st.lists(
        st.tuples(st.integers(0, 5_000), st.integers(1, 3), st.integers(1, 3)),
        min_size=1, max_size=80))
    def test_per_qp_scope_isolates_queues(self, events):
        limiter = CnpRateLimiter(E810)  # per-QP, 50 µs hidden floor
        now = 0
        per_qp = {}
        for gap, qp, ip in events:
            now += gap
            if limiter.allow(now, qp_num=qp, src_ip=ip):
                per_qp.setdefault(qp, []).append(now)
        for times in per_qp.values():
            for a, b in zip(times, times[1:]):
                assert b - a >= 50 * US

    @given(events=st.lists(
        st.tuples(st.integers(0, 3_000), st.integers(1, 4)),
        min_size=1, max_size=80))
    def test_per_ip_scope_keys_by_destination(self, events):
        limiter = CnpRateLimiter(CX4_LX, configured_interval_ns=4 * US)
        now = 0
        per_ip = {}
        for gap, ip in events:
            now += gap
            if limiter.allow(now, qp_num=ip * 100, src_ip=ip):
                per_ip.setdefault(ip, []).append(now)
        for times in per_ip.values():
            for a, b in zip(times, times[1:]):
                assert b - a >= 4 * US


class TestDcqcnInvariants:
    @given(actions=st.lists(st.sampled_from(["cnp", "bytes", "time"]),
                            min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_rate_always_within_bounds(self, actions):
        sim = Simulator()
        params = DcqcnParams(min_rate_bps=1_000_000)
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000, params=params)
        for action in actions:
            if action == "cnp":
                rp.handle_cnp()
            elif action == "bytes":
                rp.on_bytes_sent(2 * params.byte_counter_bytes)
            else:
                sim.run_for(params.increase_timer_ns)
            assert params.min_rate_bps <= rp.rate_bps <= rp.line_rate_bps
            assert rp.target_rate_bps <= rp.line_rate_bps

    @given(cuts=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_recovery_is_monotone_after_last_cut(self, cuts):
        sim = Simulator()
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        for _ in range(cuts):
            rp.handle_cnp()
        last = rp.rate_bps
        for _ in range(20):
            sim.run_for(rp.params.increase_timer_ns)
            assert rp.rate_bps >= last
            last = rp.rate_bps


class TestEtsInvariants:
    class _Qp:
        def __init__(self, ready_at=0):
            self.ready_at = ready_at
            self.ets_queue_index = 0

        def has_pending_tx(self):
            return True

        @property
        def pacing_ready_at(self):
            return self.ready_at

    @given(ready_ats=st.lists(st.integers(0, 10_000), min_size=1,
                              max_size=8),
           now=st.integers(0, 10_000))
    def test_selected_qp_is_always_eligible(self, ready_ats, now):
        sched = EtsScheduler(100_000_000_000)
        qps = [self._Qp(r) for r in ready_ats]
        for qp in qps:
            sched.assign(qp, 0)
        picked, next_time = sched.select(now)
        if picked is not None:
            assert picked.pacing_ready_at <= now
        else:
            assert next_time == min(ready_ats)
            assert next_time > now

    @given(sizes=st.lists(st.integers(64, 9000), min_size=2, max_size=40))
    def test_virtual_time_is_monotone(self, sizes):
        sched = EtsScheduler(100_000_000_000)
        sched.configure([EtsQueueConfig(0, 1.0)])
        qp = self._Qp()
        sched.assign(qp, 0)
        last_finish = 0.0
        now = 0
        for size in sizes:
            sched.account(qp, now, size)
            finish = sched._queues[0].virtual_finish
            assert finish >= last_finish
            last_finish = finish
            now += 100


class TestWildcardTableProperties:
    @given(psns=st.lists(st.integers(0, 50), min_size=1, max_size=60,
                         unique=True),
           lookups=st.lists(st.tuples(st.integers(0, 50), st.integers(1, 4)),
                            min_size=1, max_size=100))
    def test_budgeted_wildcards_fire_at_most_once(self, psns, lookups):
        table = MatchActionTable()
        for psn in psns:
            table.install(EventEntry(1, 2, 3, psn, ANY_ITERATION, "drop",
                                     max_hits=1))
        fired = {}
        for psn, iteration in lookups:
            if table.lookup(1, 2, 3, psn, iteration) is not None:
                fired[psn] = fired.get(psn, 0) + 1
        assert all(count == 1 for count in fired.values())
        assert set(fired) <= set(psns)

    @given(data=st.lists(st.tuples(st.integers(0, 20), st.integers(1, 3)),
                         min_size=1, max_size=50, unique=True))
    def test_exact_entries_fire_only_on_their_iteration(self, data):
        table = MatchActionTable()
        for psn, iteration in data:
            table.install(EventEntry(1, 2, 3, psn, iteration, "ecn"))
        for psn, iteration in data:
            assert table.lookup(1, 2, 3, psn, iteration) is not None
            wrong = iteration + 1
            if (psn, wrong) not in data:
                assert table.lookup(1, 2, 3, psn, wrong) is None
