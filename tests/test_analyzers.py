"""Integration tests for the §4 test-suite analyzers."""

import pytest

from conftest import corrupt, drop, ecn, run_scenario
from repro.core.analyzers import (
    expected_counters,
    mct_stats,
    min_cnp_interval_ns,
    per_qp_goodput_gbps,
    split_mct,
)
# The deprecation shims are covered in test_analyzer_registry; the
# behaviour tests here go straight to the implementations.
from repro.core.analyzers.cnp import _analyze_cnps as analyze_cnps
from repro.core.analyzers.counter_check import _check_counters as check_counters
from repro.core.analyzers.gbn_fsm import (
    _check_gbn_compliance as check_gbn_compliance,
)
from repro.core.analyzers.retrans_perf import (
    _analyze_retransmissions as analyze_retransmissions,
)


class TestRetransPerfAnalyzer:
    def test_fast_retransmission_breakdown(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=2,
                              message_size=102400, events=(drop(psn=50),),
                              seed=3)
        events = analyze_retransmissions(result.trace)
        assert len(events) == 1
        event = events[0]
        assert event.fast_retransmission
        assert event.recovered
        assert event.nack_generation_ns is not None
        assert event.nack_reaction_ns is not None
        assert event.total_recovery_ns > 0
        # CX5: both phases are single-digit microseconds (Fig. 8/9).
        assert event.nack_generation_ns < 15_000
        assert event.nack_reaction_ns < 20_000

    def test_read_implied_nack_measured(self):
        result = run_scenario(nic="cx5", verb="read", num_msgs=2,
                              message_size=102400, events=(drop(psn=50),),
                              seed=3)
        events = analyze_retransmissions(result.trace)
        assert len(events) == 1
        assert events[0].fast_retransmission

    def test_timeout_recovery_has_no_nack(self):
        result = run_scenario(verb="write", num_msgs=1, message_size=4096,
                              events=(drop(psn=4),), timeout_cfg=10, seed=4)
        events = analyze_retransmissions(result.trace)
        assert len(events) == 1
        assert not events[0].fast_retransmission
        assert events[0].nack_time_ns is None
        assert events[0].recovered

    def test_profile_ordering_write_reaction(self):
        # Fig. 9a: CX5 reacts orders of magnitude faster than CX4.
        def react(nic):
            result = run_scenario(nic=nic, verb="write", num_msgs=2,
                                  message_size=102400,
                                  events=(drop(psn=50),), seed=3)
            return analyze_retransmissions(result.trace)[0].nack_reaction_ns

        assert react("cx4") > 20 * react("cx5")

    def test_profile_ordering_read_generation(self):
        # Fig. 8b: E810's Read NACK generation is ~milliseconds.
        def gen(nic):
            result = run_scenario(nic=nic, verb="read", num_msgs=2,
                                  message_size=102400,
                                  events=(drop(psn=50),), seed=3)
            return analyze_retransmissions(result.trace)[0].nack_generation_ns

        assert gen("e810") > 50_000_000       # ~83 ms
        assert gen("cx4") > 20 * gen("cx5")   # ~150 µs vs ~2-5 µs

    def test_no_drops_no_events(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096)
        assert analyze_retransmissions(result.trace) == []


class TestGbnFsmAnalyzer:
    @pytest.mark.parametrize("nic", ["ideal", "cx4", "cx5", "cx6", "e810"])
    @pytest.mark.parametrize("verb", ["write", "read"])
    def test_all_nics_pass_with_drop(self, nic, verb):
        # §6.1: all tested RNICs pass the FSM-based logic check.
        result = run_scenario(nic=nic, verb=verb, num_msgs=2,
                              message_size=102400, events=(drop(psn=50),),
                              seed=3)
        report = check_gbn_compliance(result.trace)
        assert report.compliant, [str(v) for v in report.violations]
        assert report.connections_checked >= 1
        assert report.packets_checked > 0

    def test_clean_trace_compliant(self):
        result = run_scenario(verb="write", num_msgs=3, message_size=4096)
        assert check_gbn_compliance(result.trace).compliant

    def test_double_drop_timeout_path_compliant(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(drop(psn=2), drop(psn=2, iteration=2)),
                              timeout_cfg=10, seed=6)
        assert check_gbn_compliance(result.trace).compliant

    def test_corruption_treated_as_loss(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(corrupt(psn=2),), seed=10)
        assert check_gbn_compliance(result.trace).compliant


class TestCnpAnalyzer:
    def test_single_mark_single_cnp(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096,
                              events=(ecn(psn=3),), seed=9)
        report = analyze_cnps(result.trace)
        assert report.total_cnps == 1
        assert report.total_ecn_marked == 1
        assert report.spurious_cnps == 0

    def test_no_marks_no_cnps(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096)
        report = analyze_cnps(result.trace)
        assert report.total_cnps == 0
        assert min_cnp_interval_ns(result.trace) is None

    def test_nvidia_interval_honours_configuration(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=3,
                              message_size=102400, cnp_interval_us=4,
                              rp_enable=False, seed=31,
                              events=tuple(ecn(psn=p) for p in range(1, 101)))
        interval = min_cnp_interval_ns(result.trace)
        assert interval is not None
        assert interval >= 3_500  # ≥ ~4 µs with jitter tolerance

    def test_e810_hidden_floor_detected(self):
        # §6.3: E810 enforces ~50 µs regardless of configuration. Mark
        # every packet of a 170 µs-long transfer so several CNPs fit.
        result = run_scenario(nic="e810", verb="write", num_msgs=20,
                              message_size=102400, cnp_interval_us=0,
                              rp_enable=False, seed=31, barrier_sync=False,
                              tx_depth=4,
                              events=tuple(ecn(psn=p) for p in range(1, 2001)))
        interval = min_cnp_interval_ns(result.trace)
        assert interval is not None
        assert interval >= 45_000


class TestCounterAnalyzer:
    def test_clean_run_consistent(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=3,
                              message_size=4096, events=(drop(psn=2),), seed=5)
        report = check_counters(result)
        assert report.consistent
        assert report.checked > 0

    def test_e810_cnp_sent_bug_detected(self):
        # §6.2.4: cnpSent stays 0 although CNPs are on the wire.
        result = run_scenario(nic="e810", verb="write", num_msgs=2,
                              message_size=4096, events=(ecn(psn=3),), seed=9)
        report = check_counters(result)
        bugs = [m for m in report.mismatches if m.counter == "cnp_sent"]
        assert len(bugs) == 1
        assert bugs[0].vendor_counter == "cnpSent"
        assert bugs[0].expected == 1
        assert bugs[0].reported == 0
        assert bugs[0].host == "responder"

    def test_cx4_implied_nak_bug_detected(self):
        # §6.2.4: implied_nak_seq_err stuck on Read OOO.
        result = run_scenario(nic="cx4", verb="read", num_msgs=2,
                              message_size=10240, events=(drop(psn=2),),
                              seed=5)
        report = check_counters(result)
        bugs = [m for m in report.mismatches
                if m.counter == "implied_nak_seq_err"]
        assert len(bugs) == 1
        assert bugs[0].reported == 0
        assert bugs[0].expected > 0
        assert bugs[0].host == "requester"

    def test_cx5_read_counter_consistent(self):
        # The same scenario on CX5 increments the counter correctly.
        result = run_scenario(nic="cx5", verb="read", num_msgs=2,
                              message_size=10240, events=(drop(psn=2),),
                              seed=5)
        report = check_counters(result)
        assert not [m for m in report.mismatches
                    if m.counter == "implied_nak_seq_err"]

    def test_expected_counters_derived_from_wire(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=2,
                              message_size=4096, events=(ecn(psn=3),), seed=9)
        responder_ips = {m.responder_ip for m in result.metadata}
        expected = expected_counters(result.trace, responder_ips)
        assert expected["cnp_sent"] == 1
        assert expected["ecn_marked_packets"] == 1


class TestGoodputAnalyzer:
    def test_mct_stats(self):
        result = run_scenario(verb="write", num_msgs=5, message_size=4096)
        stats = mct_stats(result.traffic_log.all_messages)
        assert stats.count == 5
        assert stats.min_ns <= stats.p50_ns <= stats.p99_ns <= stats.max_ns
        assert stats.mean_us == stats.mean_ns / 1e3

    def test_mct_stats_empty(self):
        assert mct_stats([]) is None

    def test_per_qp_goodput(self):
        result = run_scenario(verb="write", num_connections=2, num_msgs=3,
                              message_size=65536, barrier_sync=False,
                              tx_depth=2)
        goodput = per_qp_goodput_gbps(result.traffic_log)
        assert set(goodput) == {1, 2}
        assert all(v > 0 for v in goodput.values())

    def test_split_mct(self):
        result = run_scenario(verb="write", num_connections=3, num_msgs=2,
                              message_size=4096)
        parts = split_mct(result.traffic_log, [1])
        assert parts["selected"].count == 2
        assert parts["others"].count == 4
