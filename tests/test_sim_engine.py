"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator, SimulationError, US, MS, SEC


class TestScheduling:
    def test_initial_time_is_zero(self, sim):
        assert sim.now == 0

    def test_callback_runs_at_scheduled_time(self, sim):
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100]

    def test_arguments_are_passed(self, sim):
        seen = []
        sim.schedule(5, seen.append, "value")
        sim.run()
        assert seen == ["value"]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(300, order.append, "c")
        sim.schedule(100, order.append, "a")
        sim.schedule(200, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_tick_events_fire_fifo(self, sim):
        order = []
        for tag in range(10):
            sim.schedule(50, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_zero_delay_runs_after_current_tick_events(self, sim):
        order = []

        def outer():
            sim.schedule(0, order.append, "inner")
            order.append("outer")

        sim.schedule(10, outer)
        sim.schedule(10, order.append, "sibling")
        sim.run()
        assert order == ["outer", "sibling", "inner"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(400, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [400]

    def test_schedule_at_in_the_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_nested_scheduling(self, sim):
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth:
                sim.schedule(10, chain, depth - 1)

        sim.schedule(0, chain, 3)
        sim.run()
        assert seen == [0, 10, 20, 30]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        event = sim.schedule(10, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancel_one_of_many(self, sim):
        seen = []
        keep = sim.schedule(10, seen.append, "keep")
        kill = sim.schedule(10, seen.append, "kill")
        kill.cancel()
        sim.run()
        assert seen == ["keep"]
        assert not keep.cancelled

    def test_pending_excludes_cancelled(self, sim):
        sim.schedule(10, lambda: None)
        event = sim.schedule(20, lambda: None)
        event.cancel()
        assert sim.pending == 1

    def test_heap_compacts_when_cancelled_dominate(self, sim):
        events = [sim.schedule(1000 + i, lambda: None) for i in range(100)]
        assert sim.queue_size == 100
        for event in events[:60]:
            event.cancel()
        # Once cancelled entries outnumbered live ones the heap was
        # compacted (at the 51st cancel), shedding the dead entries.
        assert sim.pending == 40
        assert sim.queue_size < 60
        assert sim.queue_size >= sim.pending

    def test_small_queues_are_never_compacted(self, sim):
        events = [sim.schedule(10 + i, lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        assert sim.queue_size == 10  # below the compaction floor
        assert sim.pending == 0
        sim.run()
        assert sim.events_processed == 0

    def test_compaction_preserves_order_and_results(self, sim):
        seen = []
        events = [sim.schedule(100 + i, seen.append, i) for i in range(200)]
        for event in events[::2]:  # cancel every other event
            event.cancel()
        sim.run()
        assert seen == list(range(1, 200, 2))

    def test_cancel_after_fire_keeps_accounting_sane(self, sim):
        event = sim.schedule(10, lambda: None)
        survivor = sim.schedule(20, lambda: None)
        sim.run(until=15)
        event.cancel()  # already fired: must not corrupt live count
        assert sim.pending == 1
        sim.run()
        assert sim.events_processed == 2
        del survivor


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(100, seen.append, "early")
        sim.schedule(5000, seen.append, "late")
        sim.run(until=1000)
        assert seen == ["early"]
        assert sim.now == 1000

    def test_run_until_advances_clock_even_when_queue_drains(self, sim):
        sim.run(until=777)
        assert sim.now == 777

    def test_remaining_events_fire_on_next_run(self, sim):
        seen = []
        sim.schedule(100, seen.append, 1)
        sim.schedule(5000, seen.append, 2)
        sim.run(until=1000)
        sim.run()
        assert seen == [1, 2]

    def test_run_for_relative_duration(self, sim):
        sim.schedule(100, lambda: None)
        sim.run(until=200)
        sim.run_for(300)
        assert sim.now == 500

    def test_max_events_budget(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(i, seen.append, i)
        sim.run(max_events=4)
        assert seen == [0, 1, 2, 3]

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_not_reentrant(self, sim):
        def recurse():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1, recurse)
        sim.run()

    def test_reset_clears_queue_and_clock(self, sim):
        seen = []
        sim.schedule(10, seen.append, "x")
        sim.run(until=5)
        sim.reset()
        assert sim.now == 0
        sim.run()
        assert seen == []

    def test_reset_restarts_tiebreak_sequence(self, sim):
        """A reset simulator reproduces a fresh one's same-tick ordering."""
        def same_tick_order():
            order = []
            for tag in range(5):
                sim.schedule(50, order.append, tag)
            sim.run()
            return order

        first = same_tick_order()
        sim.reset()
        assert same_tick_order() == first == list(range(5))

    def test_reset_detaches_queued_events(self, sim):
        stale = sim.schedule(10, lambda: None)
        sim.reset()
        fresh = sim.schedule(10, lambda: None)
        stale.cancel()  # pre-reset event: must not touch the new counts
        assert sim.pending == 1
        del fresh


class TestTimeConstants:
    def test_unit_relationships(self):
        assert US == 1_000
        assert MS == 1_000 * US
        assert SEC == 1_000 * MS
