"""Integration tests for the orchestrator and result collection."""

import pytest

from conftest import drop, run_scenario
from repro import quick_config
from repro.core.config import TestConfig, TrafficConfig, HostConfig, DataPacketEvent
from repro.core.orchestrator import Orchestrator, run_test
from repro.core.testbed import build_testbed


class TestQuickConfig:
    def test_defaults(self):
        config = quick_config()
        assert config.requester.nic_type == "cx5"
        assert config.traffic.rdma_verb == "write"

    def test_drop_psn_inserts_event(self):
        config = quick_config(drop_psn=5)
        assert len(config.traffic.data_pkt_events) == 1
        assert config.traffic.data_pkt_events[0].psn == 5

    def test_asymmetric_nics(self):
        config = quick_config(nic="e810", nic_responder="cx5")
        assert config.requester.nic_type == "e810"
        assert config.responder.nic_type == "cx5"


class TestTestbedBuilder:
    def test_topology_shape(self):
        testbed = build_testbed(quick_config())
        # Two host ports + two dumper ports on the switch.
        assert len(testbed.switch.ports) == 4
        assert len(testbed.dumpers.servers) == 2
        assert testbed.requester.nic.port.peer is not None
        assert testbed.responder.nic.port.peer is not None

    def test_arp_fully_populated(self):
        testbed = build_testbed(quick_config())
        for host in (testbed.requester, testbed.responder):
            for ip in (testbed.requester.ips + testbed.responder.ips):
                assert host.nic.resolve_mac(ip) != 0xFFFFFFFFFFFF

    def test_cx4_gets_40gbps_port(self):
        testbed = build_testbed(quick_config(nic="cx4"))
        assert testbed.requester.nic.port.bandwidth_bps == 40_000_000_000

    def test_bandwidth_override(self):
        config = quick_config()
        config = type(config)(
            requester=HostConfig(nic_type="cx5", ip_list=("10.0.0.1/24",),
                                 bandwidth_gbps=25),
            responder=config.responder, traffic=config.traffic,
            dumpers=config.dumpers, switch=config.switch, seed=1)
        testbed = build_testbed(config)
        assert testbed.requester.nic.port.bandwidth_bps == 25_000_000_000


class TestResultCollection:
    def test_table1_artifacts_present(self):
        # Table 1: dumped packets, NIC counters, traffic log, switch
        # counters.
        result = run_scenario(verb="write", num_msgs=2, message_size=2048)
        assert len(result.trace) > 0
        assert result.requester_counters.canonical["tx_packets"] > 0
        assert result.responder_counters.canonical["rx_packets"] > 0
        assert result.traffic_log.all_messages
        assert result.switch_counters["roce_rx_packets"] > 0
        assert result.duration_ns > 0

    def test_vendor_counter_names_in_snapshot(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=1,
                              message_size=1024)
        assert "np_cnp_sent" in result.responder_counters.vendor
        e810 = run_scenario(nic="e810", verb="write", num_msgs=1,
                            message_size=1024)
        assert "cnpSent" in e810.responder_counters.vendor

    def test_counters_for_accessor(self):
        result = run_scenario(verb="write", num_msgs=1, message_size=1024)
        assert result.counters_for("requester").host == "requester"
        with pytest.raises(KeyError):
            result.counters_for("bystander")

    def test_metadata_for_accessor(self):
        result = run_scenario(verb="write", num_connections=2, num_msgs=1,
                              message_size=1024)
        assert result.metadata_for(2).index == 2
        with pytest.raises(KeyError):
            result.metadata_for(5)

    def test_summary_is_printable(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=2048)
        text = result.summary()
        assert "integrity" in text
        assert "goodput" in text

    def test_suppressed_visible_for_stuck_counters(self):
        result = run_scenario(nic="e810", verb="write", num_msgs=2,
                              message_size=4096,
                              events=(DataPacketEvent(1, 3, "ecn"),), seed=9)
        assert result.responder_counters.suppressed.get("cnp_sent", 0) == 1
        assert result.responder_counters.canonical["cnp_sent"] == 0


class TestDurationCap:
    def test_wedged_run_is_bounded(self):
        # Drop every round of a tail packet with a huge timeout: the cap
        # must end the run and mark the log finished.
        events = tuple(DataPacketEvent(1, 4, "drop", iter=i)
                       for i in range(1, 10))
        config = TestConfig(
            requester=HostConfig(nic_type="cx5", ip_list=("10.0.0.1/24",)),
            responder=HostConfig(nic_type="cx5", ip_list=("10.0.0.2/24",)),
            traffic=TrafficConfig(num_connections=1, num_msgs_per_qp=1,
                                  message_size=4096,
                                  min_retransmit_timeout=20,
                                  data_pkt_events=events),
            seed=2,
            max_duration_ns=50_000_000,  # 50 ms << 4.3 s timeout
        )
        result = run_test(config)
        assert result.duration_ns <= 60_000_000
        assert result.traffic_log.finished_at > 0

    def test_event_table_populated_before_traffic(self):
        orchestrator = Orchestrator(quick_config(drop_psn=2))
        orchestrator.setup()
        assert orchestrator.testbed.switch_controller.event_table_occupancy == 1
        assert orchestrator.testbed.sim.now == 0
