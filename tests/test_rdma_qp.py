"""Unit tests for queue-pair mechanics via a minimal two-NIC testbed."""

import pytest

from repro.core.testbed import build_testbed
from repro import quick_config
from repro.net.headers import Opcode
from repro.rdma.qp import QpState, psn_add, psn_distance, psn_geq
from repro.rdma.verbs import (
    CompletionQueue,
    MemoryRegion,
    Verb,
    WcStatus,
    WorkCompletion,
    WorkRequest,
)


def minimal_pair(nic="ideal", mtu=1024, seed=3):
    testbed = build_testbed(quick_config(nic=nic, mtu=mtu, seed=seed))
    req_cq, resp_cq = CompletionQueue(), CompletionQueue()
    req_nic = testbed.requester.nic
    resp_nic = testbed.responder.nic
    req_qp = req_nic.create_qp(req_cq, testbed.requester.ips[0], mtu=mtu)
    resp_qp = resp_nic.create_qp(resp_cq, testbed.responder.ips[0], mtu=mtu)
    req_qp.connect(testbed.responder.ips[0], resp_qp.qp_num, resp_qp.initial_psn)
    resp_qp.connect(testbed.requester.ips[0], req_qp.qp_num, req_qp.initial_psn)
    return testbed, req_qp, resp_qp, req_cq


class TestVerbObjects:
    def test_work_request_validation(self):
        with pytest.raises(ValueError):
            WorkRequest(verb=Verb.WRITE, length=0)

    def test_wr_ids_unique(self):
        a = WorkRequest(verb=Verb.SEND, length=10)
        b = WorkRequest(verb=Verb.SEND, length=10)
        assert a.wr_id != b.wr_id

    def test_memory_region_contains(self):
        mr = MemoryRegion(address=0x1000, length=0x100)
        assert mr.contains(0x1000, 0x100)
        assert mr.contains(0x1080, 0x10)
        assert not mr.contains(0x0FFF, 1)
        assert not mr.contains(0x1000, 0x101)

    def test_verb_data_direction(self):
        assert Verb.READ.data_from_responder
        assert not Verb.WRITE.data_from_responder
        assert not Verb.SEND.data_from_responder

    def test_cq_poll_drains(self):
        cq = CompletionQueue()
        for i in range(5):
            cq.push(WorkCompletion(wr_id=i, verb=Verb.SEND,
                                   status=WcStatus.SUCCESS, qp_num=1, length=1))
        assert len(cq.poll(3)) == 3
        assert len(cq) == 2

    def test_cq_overflow_counted(self):
        cq = CompletionQueue(capacity=1)
        wc = WorkCompletion(wr_id=1, verb=Verb.SEND,
                            status=WcStatus.SUCCESS, qp_num=1, length=1)
        cq.push(wc)
        cq.push(wc)
        assert cq.overflows == 1

    def test_cq_capacity_validated(self):
        with pytest.raises(ValueError):
            CompletionQueue(capacity=0)

    def test_completion_time(self):
        wc = WorkCompletion(wr_id=1, verb=Verb.SEND, status=WcStatus.SUCCESS,
                            qp_num=1, length=1, posted_at=100, completed_at=350)
        assert wc.completion_time_ns == 250


class TestPsnHelpers:
    def test_add_wraps(self):
        assert psn_add(0xFFFFFF, 1) == 0
        assert psn_add(0xFFFFFE, 3) == 1

    def test_distance(self):
        assert psn_distance(10, 5) == 5
        assert psn_distance(1, 0xFFFFFF) == 2

    def test_geq_window(self):
        assert psn_geq(5, 5)
        assert psn_geq(6, 5)
        assert not psn_geq(5, 6)
        assert psn_geq(1, 0xFFFFFF)  # wrapped forward


class TestQpLifecycle:
    def test_post_before_connect_rejected(self, sim):
        testbed = build_testbed(quick_config())
        cq = CompletionQueue()
        qp = testbed.requester.nic.create_qp(cq, testbed.requester.ips[0])
        assert qp.state is QpState.RESET
        with pytest.raises(RuntimeError):
            qp.post_send(WorkRequest(verb=Verb.WRITE, length=100))

    def test_connect_moves_to_rts(self):
        _, req_qp, resp_qp, _ = minimal_pair()
        assert req_qp.state is QpState.RTS
        assert resp_qp.epsn == req_qp.initial_psn

    def test_qp_numbers_random_and_24_bit(self):
        testbed = build_testbed(quick_config())
        cq = CompletionQueue()
        qpns = {testbed.requester.nic.create_qp(cq, testbed.requester.ips[0]).qp_num
                for _ in range(20)}
        assert len(qpns) == 20
        assert all(0 < q <= 0xFFFFFF for q in qpns)

    def test_write_completes_end_to_end(self):
        testbed, req_qp, _, cq = minimal_pair()
        wr = WorkRequest(verb=Verb.WRITE, length=4096)
        req_qp.post_send(wr)
        testbed.sim.run()
        completions = cq.poll()
        assert len(completions) == 1
        assert completions[0].wr_id == wr.wr_id
        assert completions[0].status is WcStatus.SUCCESS

    def test_read_completes_end_to_end(self):
        testbed, req_qp, _, cq = minimal_pair()
        req_qp.post_send(WorkRequest(verb=Verb.READ, length=4096))
        testbed.sim.run()
        assert cq.poll()[0].status is WcStatus.SUCCESS

    def test_psn_advances_per_packet(self):
        testbed, req_qp, _, _ = minimal_pair()
        start = req_qp.next_psn
        req_qp.post_send(WorkRequest(verb=Verb.WRITE, length=4096))  # 4 pkts
        assert psn_distance(req_qp.next_psn, start) == 4

    def test_read_consumes_response_psns(self):
        testbed, req_qp, _, _ = minimal_pair()
        start = req_qp.next_psn
        req_qp.post_send(WorkRequest(verb=Verb.READ, length=4096))
        assert psn_distance(req_qp.next_psn, start) == 4

    def test_base_timeout_formula(self):
        _, req_qp, _, _ = minimal_pair()
        req_qp.timeout_cfg = 14
        assert req_qp.base_timeout_ns == 4096 * (2 ** 14)
        req_qp.timeout_cfg = 0
        assert req_qp.base_timeout_ns == 4096

    def test_stats_updated_on_completion(self):
        testbed, req_qp, _, _ = minimal_pair()
        req_qp.post_send(WorkRequest(verb=Verb.WRITE, length=4096))
        testbed.sim.run()
        assert req_qp.messages_completed == 1
        assert req_qp.bytes_completed == 4096

    def test_msn_advances_per_message(self):
        testbed, req_qp, resp_qp, _ = minimal_pair()
        for _ in range(3):
            req_qp.post_send(WorkRequest(verb=Verb.WRITE, length=2048))
        testbed.sim.run()
        assert resp_qp.msn == 3
        assert resp_qp.first_message_done
