"""Resumable campaigns: interrupted runs finish byte-identical.

Exercises the full CLI path (``repro.__main__.main``) the way the CI
smoke job does: a campaign killed mid-flight via the deterministic
``REPRO_CAMPAIGN_CRASH_AFTER_GEN`` knob must, once resumed with the
same ``--campaign`` directory, produce a report byte-identical to an
uninterrupted run's — and repeat invocations must replay from the
store instead of re-simulating.
"""

import json
import os

import pytest

from repro import quick_config
from repro.__main__ import main
from repro.store import CampaignStore
from repro.store.index import StoreError


@pytest.fixture
def base_config_file(tmp_path):
    config = quick_config(nic="cx5", verb="write", num_msgs=1,
                          message_size=2048, num_connections=1, seed=1)
    path = tmp_path / "base.json"
    path.write_text(json.dumps(config.to_dict()))
    return str(path)


def _fuzz_argv(config_file, campaign, output):
    return ["fuzz", config_file, "-n", "4", "--batch", "2",
            "--threshold", "2.0", "--campaign", campaign, "-o", output]


class TestFuzzCampaignResume:
    def test_crash_then_resume_is_byte_identical(self, tmp_path,
                                                 base_config_file,
                                                 monkeypatch, capsys):
        clean_out = str(tmp_path / "clean.txt")
        main(_fuzz_argv(base_config_file, str(tmp_path / "clean"), clean_out))

        # Same campaign, killed right after generation 1 is journaled.
        resumed_out = str(tmp_path / "resumed.txt")
        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN", "1")
        with pytest.raises(SystemExit) as exc:
            main(_fuzz_argv(base_config_file, str(tmp_path / "crash"),
                            resumed_out))
        assert exc.value.code == 3
        assert not os.path.exists(resumed_out)  # died before reporting

        monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN")
        capsys.readouterr()
        main(_fuzz_argv(base_config_file, str(tmp_path / "crash"),
                        resumed_out))
        with open(clean_out, "rb") as a, open(resumed_out, "rb") as b:
            assert a.read() == b.read()
        # Generation 1 was replayed from the journal, not re-simulated:
        # only the post-crash candidates show up as store misses.
        stats = [line for line in capsys.readouterr().out.splitlines()
                 if line.startswith("store:")]
        assert stats == ["store: 0 hit(s), 2 miss(es), 4 entries"]

    def test_repeat_with_fresh_journal_hits_store(self, tmp_path,
                                                  base_config_file, capsys):
        campaign = str(tmp_path / "campaign")
        output = str(tmp_path / "first.txt")
        main(_fuzz_argv(base_config_file, campaign, output))
        capsys.readouterr()

        # Losing the journal but keeping the store models the ">=90%
        # hits on repeat" contract: every candidate score replays.
        os.remove(os.path.join(campaign, "journal.jsonl"))
        repeat_out = str(tmp_path / "repeat.txt")
        main(_fuzz_argv(base_config_file, campaign, repeat_out))
        out = capsys.readouterr().out
        assert "store: 4 hit(s), 0 miss(es), 4 entries" in out
        with open(output, "rb") as a, open(repeat_out, "rb") as b:
            assert a.read() == b.read()

    def test_campaign_dir_rejects_different_campaign(self, tmp_path,
                                                     base_config_file,
                                                     monkeypatch):
        campaign = str(tmp_path / "campaign")
        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN", "1")
        with pytest.raises(SystemExit):
            main(_fuzz_argv(base_config_file, campaign,
                            str(tmp_path / "out.txt")))
        monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN")
        # Re-entering the directory with different knobs must refuse
        # rather than mix two campaigns' state.
        with pytest.raises(StoreError, match="different campaign"):
            main(["fuzz", base_config_file, "-n", "4", "--batch", "3",
                  "--threshold", "2.0", "--campaign", campaign])


def _sweep_argv(campaign, output):
    return ["sweep", "--nics", "cx5", "--seeds", "2", "--messages", "1",
            "--size", "2048", "--campaign", campaign, "-o", output]


class TestSweepCampaignResume:
    def test_repeat_sweep_replays_every_cell(self, tmp_path, capsys):
        campaign = str(tmp_path / "campaign")
        first = str(tmp_path / "first.txt")
        main(_sweep_argv(campaign, first))
        out = capsys.readouterr().out
        assert "store: 0 hit(s), 2 miss(es), 2 entries" in out
        assert "2 of 2 runs executed" in out

        second = str(tmp_path / "second.txt")
        main(_sweep_argv(campaign, second))
        out = capsys.readouterr().out
        assert "store: 2 hit(s), 0 miss(es), 2 entries" in out
        assert "0 of 2 runs executed" in out
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()

    def test_partial_store_reruns_only_missing_cells(self, tmp_path, capsys):
        campaign = str(tmp_path / "campaign")
        first = str(tmp_path / "first.txt")
        main(_sweep_argv(campaign, first))
        capsys.readouterr()

        # Evict one cell — an interrupted sweep in miniature.
        store = CampaignStore(os.path.join(campaign, "store"))
        victim = next(iter(store.fingerprints("summary")))
        assert store.remove(victim)

        resumed = str(tmp_path / "resumed.txt")
        main(_sweep_argv(campaign, resumed))
        out = capsys.readouterr().out
        assert "store: 1 hit(s), 1 miss(es), 2 entries" in out
        assert "1 of 2 runs executed" in out
        with open(first, "rb") as a, open(resumed, "rb") as b:
            assert a.read() == b.read()


class TestRunAndSuiteReplay:
    def test_run_replay_is_identical(self, tmp_path, base_config_file,
                                     capsys):
        campaign = str(tmp_path / "campaign")
        first = str(tmp_path / "first.txt")
        main(["run", base_config_file, "--campaign", campaign, "-o", first])
        capsys.readouterr()
        second = str(tmp_path / "second.txt")
        main(["run", base_config_file, "--campaign", campaign, "-o", second])
        assert "store: 1 hit(s), 0 miss(es), 1 entry" \
            in capsys.readouterr().out
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()

    def test_suite_replay_hits_per_check(self, tmp_path, capsys):
        campaign = str(tmp_path / "campaign")
        argv = ["suite", "cx5", "--checks", "gbn-logic",
                "counter-consistency", "--campaign", campaign]
        main(argv)
        capsys.readouterr()
        main(argv)
        out = capsys.readouterr().out
        assert "store: 2 hit(s), 0 miss(es), 2 entries" in out

    def test_suite_seed_flag_matches_legacy_default(self, tmp_path, capsys):
        # The shared parser's --seed default is None; the battery maps
        # that to its historical seed 77, so passing --seed 77 is a
        # no-op (and shares the same store entries).
        campaign = str(tmp_path / "campaign")
        main(["suite", "cx5", "--checks", "gbn-logic",
              "--campaign", campaign])
        capsys.readouterr()
        main(["suite", "cx5", "--checks", "gbn-logic",
              "--seed", "77", "--campaign", campaign])
        assert "store: 1 hit(s), 0 miss(es), 1 entry" \
            in capsys.readouterr().out
