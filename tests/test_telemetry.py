"""Unit tests for the telemetry subsystem (metrics, spans, exporters)."""

import json

import pytest

from repro.sim.engine import Simulator
from repro.telemetry import runtime as telemetry
from repro.telemetry.export import (
    jsonl_lines,
    parse_prometheus,
    to_chrome_trace,
    to_prometheus,
)
from repro.telemetry.instrument import attach_simulator
from repro.telemetry.metrics import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.telemetry.spans import Tracer


@pytest.fixture(autouse=True)
def _clean_session():
    telemetry.disable()
    yield
    telemetry.disable()


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("pkts", host="h1")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_and_labels_share_one_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("pkts", host="h1")
        b = registry.counter("pkts", host="h1")
        c = registry.counter("pkts", host="h2")
        assert a is b and a is not c
        assert len(registry) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x="1", y="2")
        b = registry.counter("m", y="2", x="1")
        assert a is b

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_gauge_high_water(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 5

    def test_histogram_cumulative_buckets(self):
        hist = MetricsRegistry().histogram("lat", buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            hist.observe(value)
        assert hist.counts == [1, 2, 3]  # cumulative per bound
        assert hist.count == 4
        assert hist.sum == 5555

    def test_null_twins_are_inert(self):
        NULL_COUNTER.inc()
        NULL_GAUGE.set(7)
        NULL_HISTOGRAM.observe(1.0)
        # Shared singletons hold no state at all.
        assert not hasattr(NULL_COUNTER, "value")


class TestRuntime:
    def test_disabled_by_default(self):
        assert telemetry.active() is None
        assert telemetry.current() is telemetry.NULL_SESSION

    def test_enable_disable_cycle(self):
        session = telemetry.enable()
        assert telemetry.active() is session
        assert telemetry.current() is session
        telemetry.disable()
        assert telemetry.active() is None

    def test_disabled_session_hands_out_null_twins(self):
        tel = telemetry.current()
        assert tel.counter("x") is NULL_COUNTER
        assert tel.gauge("x") is NULL_GAUGE
        with tel.span("phase"):
            pass
        with tel.wall_span("phase"):
            pass
        assert tel.instant("e") is None

    def test_context_manager_scopes_session(self, tmp_path):
        with telemetry.session(str(tmp_path), export_on_exit=True) as tel:
            tel.counter("inside").inc()
            assert telemetry.active() is tel
        assert telemetry.active() is None
        assert (tmp_path / "metrics.prom").exists()


class TestSpans:
    def test_span_records_sim_time_bounds(self):
        sim = Simulator()
        tracer = Tracer(clock=lambda: sim.now)
        with tracer.span("window", pid="p", tid="t"):
            sim.schedule(500, lambda: None)
            sim.run()
        (span,) = tracer.spans
        assert span.start_ns == 0
        assert span.duration_ns == 500
        assert span.wall_ns > 0

    def test_span_args_via_set(self):
        tracer = Tracer()
        with tracer.span("s", score=1) as span:
            span.set(verdict="ok")
        assert tracer.spans[0].args == {"score": 1, "verdict": "ok"}

    def test_instant_stamps_current_clock(self):
        now = [0]
        tracer = Tracer(clock=lambda: now[0])
        now[0] = 42
        tracer.instant("evt", pid="p")
        assert tracer.instants[0].ts_ns == 42

    def test_wall_span_is_monotonic(self):
        tracer = Tracer()
        with tracer.wall_span("w"):
            pass
        span = tracer.spans[0]
        assert span.start_ns >= 0
        assert span.duration_ns >= 0


class TestChromeTraceExport:
    def _traced(self):
        tracer = Tracer(clock=lambda: 2000)
        tracer.set_process_name("h1", "host h1")
        tracer.set_thread_name("h1", "rx", "rx pipeline")
        tracer.complete("phase", 1_000, 3_000, pid="h1", tid="rx", psn=7)
        tracer.instant("retransmit", pid="h1", tid="rx")
        return tracer

    def test_trace_is_valid_json_with_expected_shape(self):
        doc = json.loads(json.dumps(to_chrome_trace(self._traced())))
        events = doc["traceEvents"]
        phases = sorted(e["ph"] for e in events)
        assert phases == ["M", "M", "X", "i"]
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["ts"] == 1.0      # 1000 ns -> 1 us
        assert complete["dur"] == 2.0
        assert complete["args"]["psn"] == 7
        assert "wall_us" in complete["args"]

    def test_metadata_names_processes_and_threads(self):
        events = to_chrome_trace(self._traced())["traceEvents"]
        meta = {e["name"]: e for e in events if e["ph"] == "M"}
        assert meta["process_name"]["args"]["name"] == "host h1"
        assert meta["thread_name"]["args"]["name"] == "rx pipeline"


class TestPrometheusRoundTrip:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("pkts", host="h1").inc(3)
        registry.gauge("depth").set(9)
        hist = registry.histogram("lat", buckets=(10, 100))
        hist.observe(5)
        hist.observe(50)

        samples = parse_prometheus(to_prometheus(registry))
        assert samples["pkts"][(("host", "h1"),)] == 3
        assert samples["depth"][()] == 9
        assert samples["depth_high_water"][()] == 9
        assert samples["lat_bucket"][(("le", "10"),)] == 1
        assert samples["lat_bucket"][(("le", "+Inf"),)] == 2
        assert samples["lat_sum"][()] == 55
        assert samples["lat_count"][()] == 2

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}


class TestJsonl:
    def test_lines_are_parseable_and_ordered(self):
        tracer = Tracer()
        tracer.instant("b")
        tracer.complete("a", 0, 10)
        records = [json.loads(line) for line in jsonl_lines(tracer)]
        assert [r["id"] for r in records] == [0, 1]
        assert records[0]["kind"] == "instant"
        assert records[1]["dur_ns"] == 10


class TestSimProbe:
    def test_probe_records_callbacks_and_hotspots(self):
        session = telemetry.enable()
        sim = Simulator()
        probe = attach_simulator(sim, session)

        def busy():
            pass

        for i in range(5):
            sim.schedule(i, busy)
        sim.run()
        probe.flush()

        assert session.registry.find("sim_events_processed", sim="sim").value == 5
        (top, count, total_ns) = probe.hotspots(1)[0]
        assert "busy" in top
        assert count == 5
        assert total_ns >= 0

    def test_probe_syncs_tracer_clock(self):
        session = telemetry.enable()
        sim = Simulator()
        attach_simulator(sim, session)
        sim.schedule(300, lambda: session.instant("mark"))
        sim.run()
        assert session.tracer.instants[0].ts_ns == 300

    def test_no_probe_when_disabled(self):
        sim = Simulator()
        assert sim.probe is None
        sim.schedule(1, lambda: None)
        sim.run()  # probe-free fast path


class TestReportCommand:
    def test_report_renders_run_directory(self, tmp_path, capsys):
        from repro.__main__ import main

        config = tmp_path / "config.json"
        out = tmp_path / "tel"
        from repro.__main__ import _EXAMPLE_CONFIG

        config.write_text(json.dumps(_EXAMPLE_CONFIG))
        status = main(["run", str(config), "--telemetry", str(out),
                       "--output", str(tmp_path / "report.txt")])
        assert status == 0
        assert telemetry.active() is None  # CLI tears the session down
        for artefact in ("trace.json", "metrics.prom", "events.jsonl"):
            assert (out / artefact).exists()

        assert main(["telemetry-report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Telemetry report" in text
        assert "retransmitted packets" in text
        assert "Top wall-clock hot spots" in text
