"""Fixture-driven tests for every repro.lint rule.

Each rule gets (at least) a true positive, a true negative, and a
suppression case, exercised through :func:`repro.lint.rules.run_rules`
on small synthetic modules. Paths are chosen to land inside/outside
each rule's directory scope.
"""

import textwrap

import pytest

from repro.lint import ModuleContext, run_rules
from repro.lint.findings import FileStats
from repro.lint.rules import RULES


def lint(source, path="repro/core/sample.py", select=None, stats=None):
    ctx = ModuleContext(path, textwrap.dedent(source),
                        module_package="repro.core")
    return run_rules(ctx, select=select, stats=stats)


def codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------
def test_registry_has_all_shipped_rules():
    assert set(RULES) == {"DET001", "DET002", "DET003", "DET004",
                          "EXEC001", "TEL001", "API001", "PERF001",
                          "FLOW001", "FLOW002", "RACE001", "UNIT001"}


def test_findings_sorted_and_located():
    findings = lint("""
        import time

        def a():
            return time.time()

        def b():
            return time.monotonic()
    """)
    assert codes(findings) == ["DET001", "DET001"]
    assert findings[0].line < findings[1].line
    assert findings[0].path == "repro/core/sample.py"
    assert "time.time" in findings[0].message


# ----------------------------------------------------------------------
# DET001 — wall-clock in sim code
# ----------------------------------------------------------------------
def test_det001_positive_direct_and_aliased():
    findings = lint("""
        import time
        from time import perf_counter as pc
        from datetime import datetime

        def f():
            return time.time(), pc(), datetime.now()
    """, path="repro/sim/model.py")
    assert codes(findings) == ["DET001"] * 3


def test_det001_negative_outside_scoped_dirs():
    # telemetry/ is the one layer allowed to read the wall clock.
    assert lint("""
        import time

        def f():
            return time.perf_counter_ns()
    """, path="repro/telemetry/thing.py") == []


def test_det001_covers_exec_dir_and_api_module():
    # Wall-clock reads in the pool plumbing or the facade would leak
    # host time into scheduling decisions and cached results.
    src = """
        import time

        def f():
            return time.time()
    """
    assert codes(lint(src, path="repro/exec/runner.py")) == ["DET001"]
    assert codes(lint(src, path="repro/api.py")) == ["DET001"]


def test_det002_covers_exec_dir_and_api_module():
    src = """
        import random

        def f():
            return random.random()
    """
    assert codes(lint(src, path="repro/exec/worker.py")) == ["DET002"]
    assert codes(lint(src, path="repro/api.py")) == ["DET002"]


def test_det001_covers_faults_and_dumper_dirs():
    # The measurement-fault layer and the dumpers are simulation code:
    # a wall-clock read there would make capture loss host-speed
    # dependent.
    src = """
        import time

        def f():
            return time.time()
    """
    assert codes(lint(src, path="repro/faults/injector.py")) == ["DET001"]
    assert codes(lint(src, path="repro/dumper/server.py")) == ["DET001"]


def test_det002_covers_faults_dir():
    findings = lint("""
        import random

        def f():
            return random.random()
    """, path="repro/faults/injector.py")
    assert codes(findings) == ["DET002"]


def test_det001_negative_engine_clock_is_fine():
    assert lint("""
        def f(sim):
            return sim.now
    """, path="repro/sim/model.py") == []


def test_det001_scoped_allowlist_engine_probe():
    # The engine's probe timing is the sanctioned wall-clock site.
    src = """
        from time import perf_counter_ns

        def run():
            return perf_counter_ns()
    """
    assert lint(src, path="repro/sim/engine.py") == []
    assert codes(lint(src, path="repro/sim/other.py")) == ["DET001"]


def test_det001_suppressed(tmp_path):
    stats = FileStats()
    findings = lint("""
        import time

        def f():
            return time.time()  # repro-lint: ignore[DET001]
    """, path="repro/sim/model.py", stats=stats)
    assert findings == []
    assert stats.suppressed == 1


# ----------------------------------------------------------------------
# DET002 — unseeded global RNG
# ----------------------------------------------------------------------
def test_det002_positive_module_functions():
    findings = lint("""
        import random
        from random import randint

        def f():
            return random.random() + randint(0, 5) + random.choice([1])
    """)
    assert codes(findings) == ["DET002"] * 3


def test_det002_negative_seeded_instance_and_simrandom():
    assert lint("""
        import random
        from repro.sim.rng import SimRandom

        def f(seed):
            rng = random.Random(seed)
            sim_rng = SimRandom(seed)
            return rng.random() + sim_rng.random()
    """) == []


def test_det002_rng_module_exempt():
    assert lint("""
        import random

        def f():
            return random.randint(0, 1)
    """, path="repro/sim/rng.py") == []


def test_det002_numpy_global():
    findings = lint("""
        import numpy as np

        def f():
            unseeded = np.random.default_rng()
            seeded = np.random.default_rng(42)
            return np.random.rand(3)
    """)
    assert codes(findings) == ["DET002"] * 2  # bare default_rng + rand


def test_det002_suppressed():
    assert lint("""
        import random

        def f():
            return random.random()  # repro-lint: ignore[DET002]
    """) == []


# ----------------------------------------------------------------------
# DET003 — unordered set iteration
# ----------------------------------------------------------------------
def test_det003_positive_for_over_set_local():
    findings = lint("""
        def f(items):
            seen = set(items)
            out = []
            for x in seen:
                out.append(x)
            return out
    """)
    assert codes(findings) == ["DET003"]


def test_det003_positive_inline_set_call_and_literal():
    findings = lint("""
        def f(a, b):
            for x in set(a) - set(b):
                yield x
            for y in {1, 2, 3}:
                yield y
    """)
    assert codes(findings) == ["DET003", "DET003"]


def test_det003_positive_dict_comprehension_from_frozenset_param():
    from typing import FrozenSet  # noqa: F401 - for the fixture below

    findings = lint("""
        from typing import FrozenSet

        def f(stuck: FrozenSet[str]):
            return {name: 0 for name in stuck}
    """)
    assert codes(findings) == ["DET003"]


def test_det003_negative_sorted_wrap():
    assert lint("""
        def f(items):
            seen = set(items)
            return [x for x in sorted(seen)]
    """) == []


def test_det003_negative_membership_and_order_free():
    assert lint("""
        def f(items, wanted):
            keep = set(wanted)
            hits = [x for x in items if x in keep]
            return len(keep), sum(keep), max(keep), hits
    """) == []


def test_det003_negative_set_comprehension_target():
    # Building another set from a set is order-free by construction.
    assert lint("""
        def f(contexts, alive):
            return {c for c in contexts if c in alive}
    """.replace("contexts,", "contexts: set,")) == []


def test_det003_negative_list_iteration():
    assert lint("""
        def f(servers):
            for s in servers:
                yield s.name
    """) == []


def test_det003_suppressed():
    assert lint("""
        def f(items):
            seen = set(items)
            for x in seen:  # repro-lint: ignore[DET003]
                yield x
    """) == []


# ----------------------------------------------------------------------
# DET004 — identity ordering
# ----------------------------------------------------------------------
def test_det004_positive_key_id_and_lambda_hash():
    findings = lint("""
        def f(events):
            a = sorted(events, key=id)
            events.sort(key=lambda e: hash(e))
            return a
    """)
    assert codes(findings) == ["DET004", "DET004"]


def test_det004_negative_stable_key():
    assert lint("""
        def f(events):
            return sorted(events, key=lambda e: (e.time, e.seq))
    """) == []


def test_det004_suppressed():
    assert lint("""
        def f(events):
            return sorted(events, key=id)  # repro-lint: ignore[DET004]
    """) == []


# ----------------------------------------------------------------------
# EXEC001 — spawn-unsafe callables
# ----------------------------------------------------------------------
def test_exec001_positive_lambda_to_runner():
    findings = lint("""
        from repro.exec import ParallelRunner

        def f(payloads):
            runner = ParallelRunner(lambda p: p, workers=2)
            return runner.map(payloads)
    """)
    assert codes(findings) == ["EXEC001"]
    assert "lambda" in findings[0].message


def test_exec001_positive_closure_and_bound_method():
    findings = lint("""
        from repro.exec import ParallelRunner

        class Campaign:
            def run(self, payloads):
                def local_task(p):
                    return p
                a = ParallelRunner(local_task, workers=2)
                b = ParallelRunner(self.score, workers=2)
                return a, b
    """)
    assert codes(findings) == ["EXEC001", "EXEC001"]
    assert "closure" in findings[0].message
    assert "bound method" in findings[1].message


def test_exec001_positive_pool_submit_lambda():
    findings = lint("""
        def f(pool, x):
            return pool.submit(lambda: x + 1)
    """)
    assert codes(findings) == ["EXEC001"]


def test_exec001_negative_module_level_and_imported():
    assert lint("""
        from repro.exec import ParallelRunner
        from repro.exec.tasks import score_config_task
        from repro.exec import worker as worker_mod

        def module_task(p):
            return p

        def f(pool, payload):
            a = ParallelRunner(score_config_task, workers=2)
            b = ParallelRunner(module_task, workers=2)
            pool.submit(worker_mod.invoke, payload)
            return a, b
    """) == []


def test_exec001_task_fn_keyword():
    findings = lint("""
        from repro.exec import ParallelRunner

        def f():
            return ParallelRunner(task_fn=lambda p: p, workers=2)
    """)
    assert codes(findings) == ["EXEC001"]


def test_exec001_suppressed():
    assert lint("""
        from repro.exec import ParallelRunner

        def f():
            return ParallelRunner(  # repro-lint: ignore[EXEC001]
                lambda p: p, workers=1)
    """) == []


# ----------------------------------------------------------------------
# TEL001 — telemetry handle construction in loops
# ----------------------------------------------------------------------
def test_tel001_positive_local_session_in_loop():
    findings = lint("""
        from ..telemetry import runtime as telemetry

        def f(servers):
            tel = telemetry.current()
            for s in servers:
                tel.gauge("records", server=s.name).set(1)
    """)
    assert codes(findings) == ["TEL001"]


def test_tel001_positive_session_attribute_in_while():
    findings = lint("""
        class Probe:
            def flush(self, names):
                while names:
                    name = names.pop()
                    self.session.counter("cb", fn=name).inc()
    """)
    assert codes(findings) == ["TEL001"]


def test_tel001_negative_handle_bound_outside_loop():
    assert lint("""
        from ..telemetry import runtime as telemetry

        def f(servers):
            gauge = telemetry.current().gauge("records")
            for s in servers:
                gauge.set(s.count)
    """) == []


def test_tel001_negative_unrelated_receiver():
    # .counter() on a non-telemetry object must not trip the rule.
    assert lint("""
        def f(geigers):
            for g in geigers:
                g.counter("clicks")
    """) == []


def test_tel001_suppressed():
    assert lint("""
        from ..telemetry import runtime as telemetry

        def f(servers):
            tel = telemetry.current()
            for s in servers:
                tel.gauge(  # repro-lint: ignore[TEL001]
                    "records", server=s.name).set(1)
    """) == []


def test_tel001_positive_coverage_domain_in_loop():
    # Coverage handles obey the same contract as telemetry handles:
    # bind once at construction, never per packet.
    findings = lint("""
        from ..coverage import runtime as coverage

        def f(packets):
            cov = coverage.current()
            for pkt in packets:
                cov.domain("rdma.gbn").hit("nak-sent", pkt.ns)
    """)
    assert codes(findings) == ["TEL001"]


def test_tel001_positive_coverage_recorder_in_while():
    findings = lint("""
        class Probe:
            def drain(self, entries):
                while entries:
                    entry = entries.pop()
                    self.coverage.recorder("rnic").note(entry.ns, "gap")
    """)
    assert codes(findings) == ["TEL001"]


def test_tel001_negative_coverage_handle_bound_outside_loop():
    assert lint("""
        from ..coverage import runtime as coverage

        def f(packets):
            gbn = coverage.current().domain("rdma.gbn")
            for pkt in packets:
                gbn.hit("nak-sent", pkt.ns)
    """) == []


def test_det001_applies_to_coverage_sources():
    # DET001's directory scope includes coverage/ — the map records
    # seeded sim-time only, never wall clocks.
    findings = lint("""
        import time

        def stamp():
            return time.time()
    """, path="repro/coverage/sample.py")
    assert codes(findings) == ["DET001"]


# ----------------------------------------------------------------------
# API001 — engine-owned state mutation
# ----------------------------------------------------------------------
def test_api001_positive_clock_write_and_private_call():
    findings = lint("""
        def hack(sim):
            sim._now = 0
            sim._live += 1
            sim._queue.append(None)
            sim._compact()
    """, path="repro/core/hack.py")
    assert codes(findings) == ["API001"] * 4


def test_api001_negative_public_api():
    assert lint("""
        def ok(sim, fn):
            event = sim.schedule(10, fn)
            event.cancel()
            sim.reset()
            sim.probe = None
            return sim.now, sim.pending
    """, path="repro/core/ok.py") == []


def test_api001_negative_inside_sim_package():
    assert lint("""
        def engine_internal(sim):
            sim._now = 0
    """, path="repro/sim/helper.py") == []


def test_api001_negative_unrelated_receiver():
    # A private _queue on a non-engine object is someone else's business.
    assert lint("""
        def f(server):
            server._queue = []
    """, path="repro/core/f.py") == []


def test_api001_suppressed():
    assert lint("""
        def hack(sim):
            sim._now = 0  # repro-lint: ignore[API001]
    """, path="repro/core/hack.py") == []


# ----------------------------------------------------------------------
# PERF001 — literal struct format strings on the packet hot path
# ----------------------------------------------------------------------
def test_perf001_positive_literal_pack_and_aliased_unpack():
    findings = lint("""
        import struct
        from struct import unpack as u

        def encode(h):
            return struct.pack("!HHHH", h.a, h.b, h.c, 0)

        def decode(data):
            return u("!HHHH", data[:8])
    """, path="repro/net/sample.py")
    assert codes(findings) == ["PERF001", "PERF001"]
    assert "struct.Struct" in findings[0].message


def test_perf001_negative_precompiled_struct_and_dynamic_format():
    assert lint("""
        import struct

        _UDP = struct.Struct("!HHHH")

        def encode(h):
            return _UDP.pack(h.a, h.b, h.c, 0)

        def flexible(fmt, data):
            return struct.unpack(fmt, data)
    """, path="repro/net/sample.py") == []


def test_perf001_negative_outside_packet_path():
    # Cold-path code (store/, telemetry/, ...) may pack ad hoc.
    assert lint("""
        import struct

        def checkpoint(v):
            return struct.pack("!I", v)
    """, path="repro/store/blob.py") == []


def test_perf001_suppressed_counts_in_stats():
    stats = FileStats()
    findings = lint("""
        import struct

        def one_shot(v):
            return struct.pack("!I", v)  # repro-lint: ignore[PERF001]
    """, path="repro/rdma/sample.py", stats=stats)
    assert findings == []
    assert stats.suppressed == 1


# ----------------------------------------------------------------------
# Cross-cutting: suppressions and skip-file
# ----------------------------------------------------------------------
def test_bare_ignore_suppresses_all_rules():
    assert lint("""
        import time

        def f():
            return time.time()  # repro-lint: ignore
    """, path="repro/sim/model.py") == []


def test_ignore_for_other_rule_does_not_mask():
    findings = lint("""
        import time

        def f():
            return time.time()  # repro-lint: ignore[DET002]
    """, path="repro/sim/model.py")
    assert codes(findings) == ["DET001"]


def test_suppression_spans_parenthesized_expression():
    # The directive sits on the closing-paren line; the finding anchors
    # on the ``time.time()`` line two lines up. One statement, one span.
    assert lint("""
        import time

        def f():
            return (
                time.time()
            )  # repro-lint: ignore[DET001]
    """, path="repro/sim/model.py") == []


def test_suppression_spans_multiline_call_arguments():
    assert lint("""
        import time

        def f(log):
            log.emit(
                "started",
                at=time.time(),  # repro-lint: ignore[DET001]
            )
    """, path="repro/sim/model.py") == []


def test_suppression_spans_decorated_def_header():
    # A directive on the decorator line covers the whole def header,
    # including a default argument on a later signature line.
    assert lint("""
        import time
        import functools

        @functools.lru_cache  # repro-lint: ignore[DET001]
        def f(
            a,
            seed=time.time(),
        ):
            return a, seed
    """, path="repro/sim/model.py") == []


def test_header_suppression_does_not_leak_into_body():
    # The def header span stops before the body: a violation inside the
    # function is still reported.
    findings = lint("""
        import time
        import functools

        @functools.lru_cache  # repro-lint: ignore[DET001]
        def f(
            seed=time.time(),
        ):
            return time.time()
    """, path="repro/sim/model.py")
    assert [(f.code, "return" in (f.snippet or "")) for f in findings] == [
        ("DET001", True)]


def test_bare_ignore_dominates_within_span():
    # A bare ``ignore`` anywhere in a statement span masks every rule
    # on every line of that statement.
    assert lint("""
        import time
        import random

        def f():
            return (
                time.time(),  # repro-lint: ignore
                random.random(),
            )
    """, path="repro/sim/model.py") == []


def test_skip_file_directive():
    assert lint("""
        # repro-lint: skip-file
        import time

        def f():
            return time.time()
    """, path="repro/sim/model.py") == []


def test_directive_inside_string_is_inert():
    findings = lint('''
        import time

        DOC = "# repro-lint: skip-file"

        def f():
            """Says '# repro-lint: ignore' but only in prose."""
            return time.time()
    ''', path="repro/sim/model.py")
    assert codes(findings) == ["DET001"]


def test_select_filters_rules():
    findings = lint("""
        import time
        import random

        def f():
            return time.time() + random.random()
    """, path="repro/sim/model.py", select={"DET002"})
    assert codes(findings) == ["DET002"]


@pytest.mark.parametrize("code", sorted(RULES))
def test_every_rule_documents_itself(code):
    rule = RULES[code]
    assert rule.name and rule.description
    assert rule.severity is not None
