"""Tests for the predefined fuzzing targets (§4's general vs specific)."""

import pytest

from repro.core.fuzz import TARGETS, make_fuzzer


class TestTargetRegistry:
    def test_known_targets(self):
        assert set(TARGETS) == {"general", "noisy-neighbor", "counter-bugs"}

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            make_fuzzer("quantum", "cx5")

    def test_pools_are_valid_configs(self):
        for target in TARGETS.values():
            pool = target.initial_pool()
            assert pool, target.name
            for traffic in pool:
                assert traffic.num_connections >= 1  # constructed = valid

    def test_specific_targets_weight_their_objective(self):
        noisy = TARGETS["noisy-neighbor"].weights
        counter = TARGETS["counter-bugs"].weights
        assert noisy.innocent_inflation > noisy.counter_inconsistency
        assert counter.counter_inconsistency > counter.innocent_inflation

    def test_make_fuzzer_uses_target_pool(self):
        fuzzer, target = make_fuzzer("noisy-neighbor", "cx4", seed=9)
        assert len(fuzzer.pool) == len(target.initial_pool())
        assert fuzzer.anomaly_threshold == target.anomaly_threshold


class TestTargetedSearch:
    def test_counter_target_finds_e810_bug(self):
        fuzzer, _ = make_fuzzer("counter-bugs", "e810", seed=7)
        report = fuzzer.run(iterations=25)
        assert report.found_anomaly
        assert any("counter" in a for a in report.best.score.anomalies)

    def test_counter_target_quiet_on_cx5(self):
        fuzzer, _ = make_fuzzer("counter-bugs", "cx5", seed=7)
        report = fuzzer.run(iterations=10)
        assert not report.found_anomaly

    def test_noisy_target_finds_cx4_bug(self):
        fuzzer, _ = make_fuzzer("noisy-neighbor", "cx4", seed=9)
        report = fuzzer.run(iterations=8, stop_on_first=True)
        assert report.found_anomaly
        best = report.best
        assert any("innocent" in a or "discarded" in a
                   for a in best.score.anomalies)
        # The trigger involves drops across many connections.
        drops = {e.qpn for e in best.config.traffic.data_pkt_events
                 if e.type == "drop"}
        assert len(drops) >= 12

    def test_noisy_target_quiet_on_cx6(self):
        fuzzer, _ = make_fuzzer("noisy-neighbor", "cx6", seed=9)
        report = fuzzer.run(iterations=6)
        assert not report.found_anomaly
