"""Byte-identity golden tests for the packet hot path.

The PR 7 hot-path overhaul (precompiled Struct codecs, slotted
``Packet``, zlib-backed iCRC) must not change a single wire byte: the
vectors below were recorded with the *pre-refactor* implementation
(literal-format ``struct.pack``, dataclass ``Packet``, table-driven
CRC) and pin down ``pack_headers()`` output and iCRC values for every
header combination the testbed emits — including the switch's mirror
metadata rewrite. A second suite proves the zlib CRC backend and the
retained pure-Python table fold agree bit-for-bit on randomized
buffers, lengths, and chained folds.
"""

import pickle
import random

import pytest

from repro.net.checksum import (
    crc32_ib,
    crc32_ib_py,
    icrc_for,
    icrc_for_py,
    icrc_many,
)
from repro.net.headers import (
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    RdmaExtendedHeader,
    UdpHeader,
)
from repro.net.packet import EventType, Packet

# ----------------------------------------------------------------------
# Golden vectors recorded with the pre-refactor implementation
# (dataclass headers, literal struct formats, pure-Python CRC).
# Values are (pack_headers() hex, icrc() or None for non-RoCE).
# ----------------------------------------------------------------------
GOLDEN = {
    "l2_only": (
        "0a1b2c3d4e5f0200000000010800",
        None,
    ),
    "ip_udp": (
        "0a1b2c3d4e5f020000000001080045ba042c123400003f1100000a0000010a000002"
        "c00012b704180000",
        None,
    ),
    "bth_only": (
        "0a1b2c3d4e5f020000000001080045ba042c123400003f1100000a0000010a000002"
        "c00012b7041800000440ffff0000001180abcdef",
        2367089290,
    ),
    "bth_reth": (
        "0a1b2c3d4e5f020000000001080045ba042c123400003f1100000a0000010a000002"
        "c00012b70418000006b0ffff40abcdef0012345600007f123456789acafebabe"
        "00100000",
        1238042643,
    ),
    "bth_aeth_ack": (
        "0a1b2c3d4e5f020000000001080045ba042c123400003f1100000a0000010a000002"
        "c00012b7041800001140ffff000000220000004d1f00f00d",
        41555908,
    ),
    "bth_aeth_nak": (
        "0a1b2c3d4e5f020000000001080045ba042c123400003f1100000a0000010a000002"
        "c00012b7041800001140ffff000000220000004e60000005",
        1826731089,
    ),
    "bth_aeth_rnr": (
        "0a1b2c3d4e5f020000000001080045ba042c123400003f1100000a0000010a000002"
        "c00012b7041800001040ffff0001f00d0000ff002e000009",
        3844452052,
    ),
    "mirror_rewrite": (
        "00003ade68b100000001e240080045ba042c12340000021100000a0000010a000002"
        "c00082350418000006b0ffff40abcdef0012345600007f123456789acafebabe"
        "00100000",
        1238042643,
    ),
}

#: (transport_bytes, payload_len, expected icrc_for value), recorded
#: pre-refactor. Covers empty transport, zero/odd/MTU payloads.
ICRC_FOR_VECTORS = [
    (b"\n\x00\xff\xff\xff\x00\x00\x00\x11\x80\x00\x00\x01", 0, 1086738638),
    (b"", 0, 0),
    (b"", 64, 1972200246),
    (bytes(range(12)), 1024, 942366924),
    (bytes(range(28)), 4096, 441403980),
    (bytes(range(16)), 1, 833563261),
]


def _base(**kw):
    return Packet(
        eth=EthernetHeader(dst_mac=0x0A1B2C3D4E5F, src_mac=0x020000000001),
        ip=Ipv4Header(src_ip=0x0A000001, dst_ip=0x0A000002, total_length=1068,
                      ttl=63, dscp=46, ecn=2, identification=0x1234),
        udp=UdpHeader(src_port=49152, dst_port=4791, length=1048),
        **kw,
    )


def build(name):
    """Reconstruct each golden packet exactly as recorded."""
    if name == "l2_only":
        return Packet(eth=EthernetHeader(dst_mac=0x0A1B2C3D4E5F,
                                         src_mac=0x020000000001))
    if name == "ip_udp":
        return _base()
    if name == "bth_only":
        return _base(
            bth=BaseTransportHeader(opcode=Opcode.SEND_ONLY, dest_qp=0x11,
                                    psn=0xABCDEF, ack_request=True),
            payload_len=1024,
        )
    if name in ("bth_reth", "mirror_rewrite"):
        packet = _base(
            bth=BaseTransportHeader(opcode=Opcode.RDMA_WRITE_FIRST,
                                    solicited=True, migreq=False, pad_count=3,
                                    dest_qp=0xABCDEF, psn=0x123456, becn=True),
            reth=RdmaExtendedHeader(virtual_address=0x7F123456789A,
                                    rkey=0xCAFEBABE, dma_length=1 << 20),
            payload_len=1024,
        )
        if name == "mirror_rewrite":
            # The switch's §3.4 metadata embedding: warm the wire cache
            # first, then rewrite + invalidate, like the mirror block.
            packet.pack_headers()
            packet.icrc()
            packet.is_mirror = True
            packet.ip.ttl = EventType.DROP
            packet.eth.src_mac = 123456
            packet.eth.dst_mac = 987654321
            packet.udp.dst_port = 33333
            packet.invalidate_wire_cache()
        return packet
    if name == "bth_aeth_ack":
        return _base(
            bth=BaseTransportHeader(opcode=Opcode.ACKNOWLEDGE, dest_qp=0x22,
                                    psn=77),
            aeth=AckExtendedHeader.ack(msn=0xF00D),
        )
    if name == "bth_aeth_nak":
        return _base(
            bth=BaseTransportHeader(opcode=Opcode.ACKNOWLEDGE, dest_qp=0x22,
                                    psn=78),
            aeth=AckExtendedHeader.nak_sequence_error(msn=5),
        )
    if name == "bth_aeth_rnr":
        return _base(
            bth=BaseTransportHeader(opcode=Opcode.RDMA_READ_RESPONSE_ONLY,
                                    dest_qp=0x01F00D, psn=0xFF00),
            aeth=AckExtendedHeader.rnr_nak(timer_code=14, msn=9),
            payload_len=256,
        )
    raise KeyError(name)


class TestGoldenByteIdentity:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_pack_headers_matches_pre_refactor_bytes(self, name):
        packed_hex, _ = GOLDEN[name]
        assert build(name).pack_headers().hex() == packed_hex

    @pytest.mark.parametrize(
        "name", sorted(n for n, (_, icrc) in GOLDEN.items() if icrc is not None))
    def test_icrc_matches_pre_refactor_value(self, name):
        _, icrc = GOLDEN[name]
        assert build(name).icrc() == icrc

    def test_unpack_roundtrips_golden_bytes(self):
        # The recorded bytes parse back into headers that re-pack to
        # the same bytes (codec symmetry on real wire data).
        for name, (packed_hex, _) in GOLDEN.items():
            data = bytes.fromhex(packed_hex)
            eth = EthernetHeader.unpack(data)
            assert eth.pack() == data[:14]
            if len(data) > 14:
                ip = Ipv4Header.unpack(data[14:])
                assert ip.pack() == data[14:34]

    @pytest.mark.parametrize("transport,payload_len,expected",
                             ICRC_FOR_VECTORS)
    def test_icrc_for_vectors(self, transport, payload_len, expected):
        assert icrc_for(transport, payload_len) == expected

    def test_icrc_many_matches_scalar_on_vectors(self):
        pairs = [(t, p) for t, p, _ in ICRC_FOR_VECTORS]
        assert icrc_many(pairs) == [e for _, _, e in ICRC_FOR_VECTORS]


class TestZlibFallbackParity:
    def test_crc32_parity_randomized(self):
        rng = random.Random(0x1CEB00DA)
        for _ in range(300):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 512)))
            assert crc32_ib(data) == crc32_ib_py(data)

    def test_crc32_parity_chained_register(self):
        # Chaining passes the raw register of the previous fold — the
        # complement boundary between the backends must cancel exactly.
        rng = random.Random(0xB16B00B5)
        for _ in range(100):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 128)))
            crc = rng.randrange(0, 1 << 32)
            assert crc32_ib(data, crc) == crc32_ib_py(data, crc)

    def test_icrc_for_parity_randomized(self):
        rng = random.Random(0x5EED)
        for _ in range(100):
            transport = bytes(rng.randrange(256)
                              for _ in range(rng.randrange(0, 64)))
            payload_len = rng.randrange(0, 9000)
            assert icrc_for(transport, payload_len) == \
                icrc_for_py(transport, payload_len)

    def test_icrc_many_parity(self):
        rng = random.Random(42)
        pairs = [
            (bytes(rng.randrange(256) for _ in range(rng.randrange(0, 40))),
             rng.randrange(0, 4096))
            for _ in range(50)
        ]
        # Duplicate some entries so the intra-batch dedup path runs.
        pairs += pairs[:10]
        assert icrc_many(pairs) == [icrc_for_py(t, p) for t, p in pairs]


class TestSlottedPacketSemantics:
    def test_packet_has_no_instance_dict(self):
        packet = build("bth_reth")
        with pytest.raises(AttributeError):
            packet.not_a_field = 1

    def test_pickle_roundtrip_drops_caches(self):
        packet = build("bth_reth")
        packet.pack_headers()
        packet.icrc()
        clone = pickle.loads(pickle.dumps(packet))
        assert clone == packet  # includes packet_id
        assert clone._packed_headers is None
        assert clone._icrc_clean is None
        # Caches rebuild to the same bytes after the trip.
        assert clone.pack_headers() == packet.pack_headers()
        assert clone.icrc() == packet.icrc()

    def test_equality_ignores_cache_state(self):
        warm = build("bth_only")
        warm.pack_headers()
        cold = build("bth_only")
        cold.packet_id = warm.packet_id
        assert warm == cold

    def test_headers_are_slotted_and_unhashable(self):
        header = UdpHeader()
        with pytest.raises(AttributeError):
            header.extra = 1
        with pytest.raises(TypeError):
            hash(header)
        with pytest.raises(TypeError):
            hash(build("l2_only"))
