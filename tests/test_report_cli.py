"""Tests for the report renderer and the command-line interface."""

import json

import pytest

from conftest import drop, ecn, run_scenario
from repro.__main__ import build_parser, main
from repro.core.report import render_report


class TestReport:
    def test_report_sections_present(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=3,
                              message_size=4096, events=(drop(psn=2),), seed=5)
        report = render_report(result)
        for heading in ("Lumina test report", "Integrity",
                        "Application metrics", "Retransmission analysis",
                        "Go-back-N logic check", "Counter check",
                        "Counters (vendor names)"):
            assert heading in report

    def test_report_shows_recovery_breakdown(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=3,
                              message_size=4096, events=(drop(psn=2),), seed=5)
        report = render_report(result)
        assert "fast retransmission" in report
        assert "NACK gen" in report

    def test_report_flags_counter_bugs(self):
        result = run_scenario(nic="e810", verb="write", num_msgs=2,
                              message_size=4096, events=(ecn(psn=3),), seed=9)
        report = render_report(result)
        assert "COUNTER BUGS" in report
        assert "cnpSent" in report

    def test_clean_run_report_is_quiet(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=2,
                              message_size=2048)
        report = render_report(result)
        assert "no injected drops" in report
        assert "compliant" in report
        assert "consistent with the trace" in report

    def test_report_uses_vendor_counter_names(self):
        result = run_scenario(nic="cx4", verb="write", num_msgs=2,
                              message_size=4096, events=(drop(psn=2),), seed=5)
        report = render_report(result)
        assert "packet_seq_err=" in report  # NVIDIA naming


class TestCli:
    def test_example_config_is_valid_json(self, capsys):
        assert main(["example-config"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["requester"]["nic"]["type"] == "cx5"

    def test_nics_lists_all_profiles(self, capsys):
        assert main(["nics"]) == 0
        out = capsys.readouterr().out
        for nic in ("ideal", "cx4", "cx5", "cx6", "e810"):
            assert nic in out
        assert "non-work-conserving ETS" in out

    def test_run_roundtrip(self, tmp_path, capsys):
        config = {
            "requester": {"nic": {"type": "cx5", "ip-list": ["10.0.0.1/24"]}},
            "responder": {"nic": {"type": "cx5", "ip-list": ["10.0.0.2/24"]}},
            "traffic": {"num-msgs-per-qp": 2, "message-size": 2048},
            "seed": 4,
        }
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(config))
        assert main(["run", str(path)]) == 0
        assert "Lumina test report" in capsys.readouterr().out

    def test_run_writes_output_file(self, tmp_path, capsys):
        config = {
            "requester": {"nic": {"type": "cx5", "ip-list": ["10.0.0.1/24"]}},
            "responder": {"nic": {"type": "cx5", "ip-list": ["10.0.0.2/24"]}},
            "traffic": {"num-msgs-per-qp": 1, "message-size": 1024},
        }
        path = tmp_path / "cfg.json"
        out = tmp_path / "report.txt"
        path.write_text(json.dumps(config))
        assert main(["run", str(path), "-o", str(out)]) == 0
        assert "Integrity" in out.read_text()

    def test_seed_override(self, tmp_path, capsys):
        config = {
            "requester": {"nic": {"type": "cx5", "ip-list": ["10.0.0.1/24"]}},
            "responder": {"nic": {"type": "cx5", "ip-list": ["10.0.0.2/24"]}},
            "traffic": {"num-msgs-per-qp": 1, "message-size": 1024},
            "seed": 1,
        }
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(config))
        assert main(["run", str(path), "--seed", "99"]) == 0
        assert "seed=99" in capsys.readouterr().out

    def test_fuzz_command(self, tmp_path, capsys):
        config = {
            "requester": {"nic": {"type": "e810", "ip-list": ["10.0.0.1/24"]}},
            "responder": {"nic": {"type": "e810", "ip-list": ["10.0.0.2/24"]}},
            "traffic": {"num-connections": 2, "num-msgs-per-qp": 2,
                        "message-size": 10240},
            "seed": 7,
        }
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(config))
        code = main(["fuzz", str(path), "-n", "10", "--threshold", "2.5"])
        out = capsys.readouterr().out
        assert "findings:" in out
        assert code in (0, 2)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
