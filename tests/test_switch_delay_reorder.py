"""Direct switch-level tests for the §7 extension actions."""

import pytest

from repro.net.headers import BaseTransportHeader, Ipv4Header, Opcode, UdpHeader
from repro.net.link import Node, connect, gbps
from repro.net.packet import EventType, Packet
from repro.sim.rng import SimRandom
from repro.switch.events import ANY_ITERATION, EventEntry
from repro.switch.pipeline import TofinoSwitch


class Host(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, port, packet):
        self.received.append((self.sim.now, packet))


def build(sim):
    switch = TofinoSwitch(sim, "sw", SimRandom(3))
    a, b = Host(sim, "a"), Host(sim, "b")
    for host, ip in ((a, 1), (b, 2)):
        sw_port = switch.add_host_port(gbps(100))
        connect(sw_port, host.add_port(gbps(100)), 100)
        switch.set_forwarding(ip, sw_port)
    return switch, a, b


def data_packet(psn, qpn=7):
    return Packet(
        ip=Ipv4Header(src_ip=1, dst_ip=2),
        udp=UdpHeader(src_port=0xC001, dst_port=4791),
        bth=BaseTransportHeader(opcode=Opcode.SEND_ONLY, dest_qp=qpn, psn=psn),
        payload_len=256,
    )


class TestDelayAction:
    def test_delay_holds_packet_for_configured_time(self, sim):
        switch, a, b = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "delay",
                                        delay_ns=50_000))
        a.ports[0].send(data_packet(5))
        a.ports[0].send(data_packet(6))
        sim.run()
        arrival = {p.bth.psn: t for t, p in b.received}
        assert arrival[5] - arrival[6] >= 45_000  # 5 held ~50 µs
        assert len(b.received) == 2

    def test_delay_counter(self, sim):
        switch, a, b = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "delay",
                                        delay_ns=1_000))
        a.ports[0].send(data_packet(5))
        sim.run()
        assert switch.delayed_by_event == 1
        assert switch.dump_counters()["delayed_by_event"] == 1

    def test_delayed_packet_mirrored_with_delay_code(self, sim):
        switch, a, b = build(sim)
        dumper = Host(sim, "d")
        port = switch.add_dumper_port(gbps(100))
        connect(port, dumper.add_port(gbps(100)), 100)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "delay",
                                        delay_ns=1_000))
        a.ports[0].send(data_packet(5))
        sim.run()
        assert dumper.received[0][1].ip.ttl == EventType.DELAY


class TestReorderAction:
    def test_reorder_swaps_with_next_packet(self, sim):
        switch, a, b = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "reorder"))
        a.ports[0].send(data_packet(5))
        a.ports[0].send(data_packet(6))
        sim.run()
        order = [p.bth.psn for _, p in sorted(b.received)]
        assert order == [6, 5]
        assert switch.reordered_by_event == 1

    def test_reorder_without_successor_uses_safety_timer(self, sim):
        switch, a, b = build(sim)
        switch.reorder_release_timeout_ns = 30_000
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "reorder"))
        a.ports[0].send(data_packet(5))
        sim.run()
        assert len(b.received) == 1
        assert b.received[0][0] >= 30_000

    def test_reorder_scoped_to_connection(self, sim):
        # A packet of a different connection must not release the hold.
        switch, a, b = build(sim)
        switch.reorder_release_timeout_ns = 50_000
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "reorder"))
        a.ports[0].send(data_packet(5, qpn=7))
        a.ports[0].send(data_packet(1, qpn=9))  # other connection
        sim.run()
        arrival = {(p.bth.dest_qp, p.bth.psn): t for t, p in b.received}
        assert arrival[(7, 5)] >= 50_000       # released by safety timer
        assert arrival[(9, 1)] < 10_000

    def test_second_reorder_releases_first(self, sim):
        switch, a, b = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "reorder"))
        switch.install_event(EventEntry(1, 2, 7, 6, 1, "reorder"))
        a.ports[0].send(data_packet(5))
        a.ports[0].send(data_packet(6))
        a.ports[0].send(data_packet(7))
        sim.run()
        psns = {p.bth.psn for _, p in b.received}
        assert psns == {5, 6, 7}  # nothing lost


class TestWildcardInPipeline:
    def test_any_round_entry_fires_on_retransmission_round(self, sim):
        switch, a, b = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, ANY_ITERATION, "drop",
                                        max_hits=1))
        # First pass a later PSN so the wildcard target arrives in a
        # higher ITER (as happens after a recovery).
        a.ports[0].send(data_packet(9))
        sim.run()
        a.ports[0].send(data_packet(5))  # ITER 2 for this connection
        sim.run()
        assert switch.dropped_by_event == 1
        delivered = {p.bth.psn for _, p in b.received}
        assert 5 not in delivered

    def test_spent_wildcard_lets_retransmission_through(self, sim):
        switch, a, b = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, ANY_ITERATION, "drop",
                                        max_hits=1))
        a.ports[0].send(data_packet(5))
        sim.run()
        a.ports[0].send(data_packet(5))  # retransmission
        sim.run()
        assert switch.dropped_by_event == 1
        assert any(p.bth.psn == 5 for _, p in b.received)
