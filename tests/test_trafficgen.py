"""Unit/integration tests for the traffic generator (§3.2)."""

import pytest

from conftest import run_scenario
from repro import quick_config
from repro.core.config import EtsConfig, EtsQueueSpec, TrafficConfig, ConfigError
from repro.core.testbed import build_testbed
from repro.core.trafficgen import TrafficSession


def session_for(traffic: TrafficConfig, seed=3, nic="ideal"):
    testbed = build_testbed(quick_config(nic=nic, seed=seed))
    return testbed, TrafficSession(testbed, traffic)


class TestSetup:
    def test_qps_created_on_both_hosts(self):
        testbed, session = session_for(TrafficConfig(num_connections=3))
        assert len(session.requester_qps) == 3
        assert len(session.responder_qps) == 3
        assert len(session.metadata) == 3

    def test_metadata_matches_qps(self):
        testbed, session = session_for(TrafficConfig(num_connections=2))
        for meta, req, resp in zip(session.metadata, session.requester_qps,
                                   session.responder_qps):
            assert meta.requester_qpn == req.qp_num
            assert meta.responder_qpn == resp.qp_num
            assert meta.requester_ipsn == req.initial_psn
            assert meta.responder_ipsn == resp.initial_psn

    def test_connect_all_applies_loss_recovery_settings(self):
        traffic = TrafficConfig(min_retransmit_timeout=10,
                                max_retransmit_retry=3)
        testbed, session = session_for(traffic)
        session.connect_all()
        qp = session.requester_qps[0]
        assert qp.timeout_cfg == 10
        assert qp.retry_cnt == 3

    def test_single_gid_uses_first_ip(self):
        testbed, session = session_for(
            TrafficConfig(num_connections=4, multi_gid=False))
        ips = {meta.requester_ip for meta in session.metadata}
        assert len(ips) == 1

    def test_ets_mapping_validates_connection_index(self):
        traffic = TrafficConfig(
            num_connections=1,
            ets=EtsConfig(queues=(EtsQueueSpec(0, 100.0),),
                          qp_to_queue={5: 0}))
        testbed, session = session_for(traffic)
        session.connect_all()
        with pytest.raises(ConfigError):
            session.configure_ets()

    def test_ets_applies_to_responder_for_read(self):
        traffic = TrafficConfig(
            num_connections=1, rdma_verb="read",
            ets=EtsConfig(queues=(EtsQueueSpec(0, 100.0),),
                          qp_to_queue={1: 0}))
        testbed, session = session_for(traffic)
        session.connect_all()
        session.configure_ets()
        # The data sender for Read is the responder.
        assert session.responder_qps[0].ets_queue_index == 0


class TestMultiGid:
    def test_multi_gid_spreads_connections_across_ips(self):
        result = run_scenario(verb="write", num_connections=4, num_msgs=1,
                              message_size=1024)
        # The cached scenario host has one IP; build a multi-GID config
        # directly instead.
        from repro.core.config import (DumperPoolConfig, HostConfig,
                                       TestConfig)
        from repro.core.orchestrator import run_test

        config = TestConfig(
            requester=HostConfig(nic_type="ideal",
                                 ip_list=("10.0.0.1/24", "10.0.0.11/24")),
            responder=HostConfig(nic_type="ideal",
                                 ip_list=("10.0.0.2/24", "10.0.0.12/24")),
            traffic=TrafficConfig(num_connections=4, multi_gid=True,
                                  num_msgs_per_qp=1, message_size=1024),
            dumpers=DumperPoolConfig(num_servers=2),
            seed=6,
        )
        multi = run_test(config)
        req_ips = {meta.requester_ip for meta in multi.metadata}
        assert len(req_ips) == 2
        assert multi.ok
        assert result.ok  # both paths work


class TestWindowedMode:
    def test_tx_depth_limits_outstanding_messages(self):
        # With tx_depth=1 message k+1 is posted only after k completes:
        # posted_at timestamps are strictly ordered after completions.
        result = run_scenario(verb="write", num_msgs=4, message_size=4096,
                              barrier_sync=False, tx_depth=1)
        messages = sorted(result.traffic_log.per_qp[0].messages,
                          key=lambda m: m.msg_index)
        for prev, nxt in zip(messages, messages[1:]):
            assert nxt.posted_at >= prev.completed_at

    def test_deeper_window_overlaps_messages(self):
        result = run_scenario(verb="write", num_msgs=4, message_size=65536,
                              barrier_sync=False, tx_depth=4, seed=8)
        messages = sorted(result.traffic_log.per_qp[0].messages,
                          key=lambda m: m.msg_index)
        overlapped = any(nxt.posted_at < prev.completed_at
                         for prev, nxt in zip(messages, messages[1:]))
        assert overlapped

    def test_windowed_faster_than_barrier_for_multi_qp(self):
        barrier = run_scenario(verb="write", num_connections=4, num_msgs=4,
                               message_size=65536, barrier_sync=True, seed=8)
        windowed = run_scenario(verb="write", num_connections=4, num_msgs=4,
                                message_size=65536, barrier_sync=False,
                                tx_depth=4, seed=8)
        assert windowed.traffic_log.total_goodput_bps() >= \
            barrier.traffic_log.total_goodput_bps()


class TestBarrierMode:
    def test_rounds_are_synchronised(self):
        # In a round, every QP's message must be posted before any QP
        # posts the next round's message.
        result = run_scenario(verb="write", num_connections=3, num_msgs=3,
                              message_size=4096, barrier_sync=True)
        by_round = {}
        for message in result.traffic_log.all_messages:
            by_round.setdefault(message.msg_index, []).append(message)
        for index in range(2):
            last_completion = max(m.completed_at for m in by_round[index])
            next_posts = min(m.posted_at for m in by_round[index + 1])
            assert next_posts >= last_completion

    def test_per_qp_stats_complete(self):
        result = run_scenario(verb="write", num_connections=2, num_msgs=3,
                              message_size=4096)
        for qp in result.traffic_log.per_qp:
            assert len(qp.messages) == 3
            assert qp.bytes_completed == 3 * 4096
            assert qp.avg_mct_ns is not None
            assert qp.goodput_bps() is not None


class TestLogAggregates:
    def test_total_bytes(self):
        result = run_scenario(verb="write", num_connections=2, num_msgs=3,
                              message_size=4096)
        assert result.traffic_log.total_bytes_completed == 2 * 3 * 4096

    def test_empty_stats_are_none(self):
        from repro.core.trafficgen import QpStats

        stats = QpStats(qp_index=1)
        assert stats.avg_mct_ns is None
        assert stats.max_mct_ns is None
        assert stats.goodput_bps() is None
