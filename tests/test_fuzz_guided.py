"""Coverage-guided fuzzing: novelty fitness, corpus management, dedup.

Covers the feedback loop added on top of Algorithm 1 (FP4-style):

* golden novelty-score values for fixed inputs,
* the (score, config) pool pairing — including the regression where
  resumed and fresh campaigns must agree on which config owns which
  score, and loading legacy v1 checkpoints that lack the pairing,
* the 1-indexed lower bound in ``clamp_events``,
* checkpoints that keep coverage mode visible even at zero points,
* first-hit admission, dominance minimization determinism, and
  finding-dedup stability across store replay.
"""

import json
import os

import pytest

from repro import quick_config
from repro.core.config import DataPacketEvent, TrafficConfig
from repro.core.fuzz import (
    LuminaFuzzer,
    Score,
    clamp_events,
    novelty_score,
)
from repro.core.orchestrator import run_test
from repro.coverage import runtime as coverage
from repro.coverage.map import CoverageMap
from repro.sim.rng import SimRandom
from repro.store.journal import CampaignJournal
from repro.store.serialize import encode_fuzz_report


@pytest.fixture(autouse=True)
def _clean_session():
    coverage.disable()
    yield
    coverage.disable()


def _base(nic="e810", seed=1):
    return quick_config(nic=nic, verb="write", num_msgs=2,
                        message_size=10240, num_connections=2, seed=seed)


def _evil_event(qpn: int, psn: int) -> DataPacketEvent:
    """A 0/negative-indexed event, as corrupted input could craft it.

    The constructor (correctly) rejects these, so build the frozen
    dataclass without running validation — clamping is the layer that
    must cope with events that arrive from outside the constructor.
    """
    event = object.__new__(DataPacketEvent)
    object.__setattr__(event, "qpn", qpn)
    object.__setattr__(event, "psn", psn)
    object.__setattr__(event, "type", "drop")
    object.__setattr__(event, "iter", 1)
    object.__setattr__(event, "delay_us", 0.0)
    return event


class TestNoveltyScore:
    def test_golden_values_fresh_map(self):
        cumulative = CoverageMap()
        rows = [["rdma.gbn", "timeout-retransmit", 3, 100],
                ["switch.pipeline", "ecn-mark", 1, 50]]
        novelty, first_hits = novelty_score(rows, cumulative)
        # Two never-seen points: 2 x first_hit_bonus(2.0) + rarity
        # 1/(1+0) each.
        assert first_hits == 2
        assert novelty == pytest.approx(6.0)

    def test_golden_values_saturating_map(self):
        cumulative = CoverageMap()
        rows = [["rdma.gbn", "timeout-retransmit", 3, 100],
                ["switch.pipeline", "ecn-mark", 1, 50]]
        cumulative.merge_snapshot(rows)
        novelty, first_hits = novelty_score(rows, cumulative)
        # Counts are now 3 and 1: rarity 1/4 + 1/2, no first hits.
        assert first_hits == 0
        assert novelty == pytest.approx(0.75)
        # Custom bonuses scale linearly.
        novelty2, _ = novelty_score(rows, cumulative,
                                    first_hit_bonus=10.0,
                                    rare_hit_bonus=4.0)
        assert novelty2 == pytest.approx(3.0)

    def test_empty_rows_score_zero(self):
        assert novelty_score(None, CoverageMap()) == (0.0, 0)
        assert novelty_score([], CoverageMap()) == (0.0, 0)

    def test_fitness_is_total_plus_novelty(self):
        score = Score(total=2.5)
        assert score.fitness == 2.5
        score.novelty = 1.5
        assert score.fitness == pytest.approx(4.0)


class TestClampLowerBound:
    def test_crafted_zero_index_events_are_dropped(self):
        good = DataPacketEvent(1, 2, "drop")
        traffic = TrafficConfig(
            num_connections=2, message_size=10240,
            data_pkt_events=(_evil_event(0, 5), _evil_event(1, 0), good))
        clamped = clamp_events(traffic)
        assert clamped.data_pkt_events == (good,)

    def test_property_every_clamped_event_is_deliverable(self):
        rng = SimRandom(13, "clamp-property")
        for _ in range(200):
            conns = rng.randint(1, 8)
            size = rng.choice([1024, 4096, 10240])
            msgs = rng.randint(1, 4)
            total = TrafficConfig(num_connections=conns, message_size=size,
                                  num_msgs_per_qp=msgs).packets_per_connection
            # The constructor already rejects psn > total, so the crafted
            # range probes the lower bound (0, -1) plus over-range qpn —
            # exactly the events only clamping can catch.
            events = tuple(
                _evil_event(rng.randint(-1, conns + 2),
                            rng.randint(-1, total))
                for _ in range(rng.randint(1, 6)))
            clamped = clamp_events(
                TrafficConfig(num_connections=conns, message_size=size,
                              num_msgs_per_qp=msgs,
                              data_pkt_events=events))
            for event in clamped.data_pkt_events:
                # Deliverable: the 1-indexed stream really contains
                # this (connection, packet) slot.
                assert 1 <= event.qpn <= conns
                assert 1 <= event.psn <= total


class TestPoolPairing:
    def test_admit_pairs_score_with_config(self):
        fuzzer = LuminaFuzzer(_base(), seed=3)
        marker = TrafficConfig(num_connections=7, message_size=4096)
        fuzzer._admit(marker, 9.5)
        entry = fuzzer._pool[-1]
        assert entry.config == marker
        assert entry.score == 9.5
        # The sorted view is derived from the same entries.
        assert fuzzer._pool_scores == sorted(e.score for e in fuzzer._pool)
        assert fuzzer.pool[-1] == marker

    def test_resumed_and_fresh_agree_on_ownership(self, tmp_path,
                                                  monkeypatch):
        base = _base()
        fresh = LuminaFuzzer(base, seed=7, anomaly_threshold=2.5)
        report_a = fresh.run(iterations=6, batch_size=2,
                             campaign_dir=str(tmp_path / "clean"))

        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN", "1")
        crash = LuminaFuzzer(base, seed=7, anomaly_threshold=2.5)
        with pytest.raises(SystemExit) as exc:
            crash.run(iterations=6, batch_size=2,
                      campaign_dir=str(tmp_path / "crash"))
        assert exc.value.code == 3
        monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN")

        resumed = LuminaFuzzer(base, seed=7, anomaly_threshold=2.5)
        report_b = resumed.run(iterations=6, batch_size=2,
                               campaign_dir=str(tmp_path / "crash"))
        # The regression: both campaigns must agree on which config
        # owns which score, not just on the sorted score multiset.
        assert [(e.config, e.score, e.points) for e in resumed._pool] == \
            [(e.config, e.score, e.points) for e in fresh._pool]
        assert encode_fuzz_report(report_a) == encode_fuzz_report(report_b)

    def test_legacy_v1_checkpoint_without_pairing_still_resumes(
            self, tmp_path, monkeypatch):
        base = _base()
        clean = LuminaFuzzer(base, seed=7, anomaly_threshold=2.5)
        report_a = clean.run(iterations=6, batch_size=2,
                             campaign_dir=str(tmp_path / "clean"))

        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN", "1")
        with pytest.raises(SystemExit):
            LuminaFuzzer(base, seed=7, anomaly_threshold=2.5).run(
                iterations=6, batch_size=2,
                campaign_dir=str(tmp_path / "crash"))
        monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN")

        # Rewrite the journal as a v1 process would have written it:
        # configs plus a sorted score list, no pairing.
        journal_path = os.path.join(str(tmp_path / "crash"),
                                    "journal.jsonl")
        records = CampaignJournal(journal_path).load()
        with open(journal_path, "w", encoding="utf-8") as handle:
            for record in records:
                if record.get("type") == "generation":
                    record["state"].pop("pool-entries", None)
                handle.write(json.dumps(record, sort_keys=True,
                                        separators=(",", ":")) + "\n")

        resumed = LuminaFuzzer(base, seed=7, anomaly_threshold=2.5)
        report_b = resumed.run(iterations=6, batch_size=2,
                               campaign_dir=str(tmp_path / "crash"))
        # Blind selection reads only the config order and the score
        # multiset, both preserved by the positional fallback — the
        # finished report is still byte-identical.
        assert encode_fuzz_report(report_a) == encode_fuzz_report(report_b)


class TestCheckpointCoverage:
    def test_state_dict_emits_map_only_under_session_or_hits(self):
        fuzzer = LuminaFuzzer(_base(), seed=3)
        assert "coverage-map" not in fuzzer.state_dict()
        coverage.enable()
        # Zero points hit, but the session is live: the checkpoint must
        # say so, or resume can't tell coverage-on from coverage-off.
        assert fuzzer.state_dict()["coverage-map"] == []
        fuzzer._coverage.hit("rdma.gbn", "x")
        assert len(fuzzer.state_dict()["coverage-map"]) == 1
        coverage.disable()
        # A folded map survives even without a live session.
        assert len(fuzzer.state_dict()["coverage-map"]) == 1

    def test_zero_coverage_checkpoint_resumes_identically(
            self, tmp_path, monkeypatch):
        # A run_fn that yields no coverage keeps the campaign map empty
        # forever; crash-resume must still reproduce the clean run.
        # (Run outside the session so the result carries no snapshot.)
        baseline = run_test(quick_config(nic="cx5", num_msgs=1,
                                         message_size=2048))
        assert baseline.coverage is None

        def run_fn(config):
            return baseline

        def campaign(directory):
            coverage.enable()
            try:
                fuzzer = LuminaFuzzer(_base(nic="cx5"), seed=5,
                                      run_fn=run_fn)
                return fuzzer.run(iterations=4, batch_size=2,
                                  campaign_dir=directory)
            finally:
                coverage.disable()

        report_a = campaign(str(tmp_path / "clean"))
        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN", "1")
        with pytest.raises(SystemExit):
            campaign(str(tmp_path / "crash"))
        monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN")

        records = CampaignJournal(
            os.path.join(str(tmp_path / "crash"), "journal.jsonl")).load()
        checkpoint = [r for r in records if r.get("type") == "generation"]
        assert checkpoint[-1]["state"]["coverage-map"] == []

        report_b = campaign(str(tmp_path / "crash"))
        assert encode_fuzz_report(report_a) == encode_fuzz_report(report_b)

    def test_crash_knob_zero_dies_after_begin_then_resumes(
            self, tmp_path, monkeypatch):
        base = _base()
        report_a = LuminaFuzzer(base, seed=7, anomaly_threshold=2.5).run(
            iterations=4, batch_size=2,
            campaign_dir=str(tmp_path / "clean"))

        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN", "0")
        with pytest.raises(SystemExit) as exc:
            LuminaFuzzer(base, seed=7, anomaly_threshold=2.5).run(
                iterations=4, batch_size=2,
                campaign_dir=str(tmp_path / "crash"))
        assert exc.value.code == 3
        monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN")
        records = CampaignJournal(
            os.path.join(str(tmp_path / "crash"), "journal.jsonl")).load()
        assert [r["type"] for r in records] == ["begin"]

        report_b = LuminaFuzzer(base, seed=7, anomaly_threshold=2.5).run(
            iterations=4, batch_size=2,
            campaign_dir=str(tmp_path / "crash"))
        assert encode_fuzz_report(report_a) == encode_fuzz_report(report_b)


class TestGuidedSelection:
    def _high_median_fuzzer(self, run_fn):
        """A fuzzer whose pool median (100.0) no clean run can clear."""
        fuzzer = LuminaFuzzer(_base(nic="cx5"), seed=5, run_fn=run_fn,
                              keep_probability=0.0)
        anchor = fuzzer._pool[0].config
        fuzzer._pool = []
        fuzzer._pool_scores = []
        fuzzer._admit(anchor, 100.0)
        fuzzer._admit(anchor, 100.0)
        return fuzzer

    @staticmethod
    def _fresh_point_run_fn():
        baseline = run_test(quick_config(nic="cx5", num_msgs=1,
                                         message_size=2048))
        calls = {"n": 0}

        def run_fn(config):
            calls["n"] += 1
            coverage.current().live.hit("test.domain", f"p{calls['n']}")
            return baseline

        return run_fn

    def test_first_hit_admission_overrides_score(self):
        run_fn = self._fresh_point_run_fn()
        coverage.enable()
        fuzzer = self._high_median_fuzzer(run_fn)
        # Each candidate scores ~0 + a small novelty bonus — far below
        # the median, keep-probability is 0 — yet reaches a
        # never-before-seen point, so the first-hit clause must admit
        # every one.
        fuzzer.run(iterations=3, batch_size=1)
        assert len(fuzzer._pool) == 2 + 3
        assert all(e.points for e in fuzzer._pool[2:])

    def test_blind_mode_ignores_first_hits(self):
        run_fn = self._fresh_point_run_fn()
        coverage.enable()
        fuzzer = self._high_median_fuzzer(run_fn)
        fuzzer.run(iterations=3, batch_size=1, coverage_fitness=False)
        assert len(fuzzer._pool) == 2

    def test_minimization_evicts_dominated_and_bounds_pool(self):
        fuzzer = LuminaFuzzer(_base(), seed=3, max_pool_size=3)
        seed_entries = list(fuzzer._pool)
        fuzzer._pool = []
        fuzzer._pool_scores = []
        a, b, c = (seed_entries[0].config,) * 3
        fuzzer._admit(a, 5.0, (("d", "x"), ("d", "y")))
        fuzzer._admit(b, 2.0, (("d", "x"),))          # subset of the 5.0 entry
        fuzzer._admit(c, 3.0, (("d", "z"),))          # unique point: survives
        fuzzer._admit(a, 1.0, ())                     # empty: dominance-exempt
        evicted = fuzzer._minimize_pool()
        assert evicted == 1
        assert [(e.score, e.points) for e in fuzzer._pool] == [
            (5.0, (("d", "x"), ("d", "y"))),
            (3.0, (("d", "z"),)),
            (1.0, ()),
        ]
        assert fuzzer._pool_scores == [1.0, 3.0, 5.0]

    def test_eviction_determinism_across_replay(self, tmp_path):
        # Two campaigns over the same store: the second replays every
        # candidate (worker-free execution) and must evolve the exact
        # same minimized pool and report — the store-replay twin of the
        # workers-parity guarantee.
        def campaign(directory):
            coverage.enable()
            try:
                fuzzer = LuminaFuzzer(_base(), seed=7,
                                      anomaly_threshold=2.5,
                                      max_pool_size=3)
                report = fuzzer.run(iterations=8, batch_size=4,
                                    campaign_dir=directory)
                return fuzzer, report
            finally:
                coverage.disable()

        shared = str(tmp_path / "campaign")
        fuzzer_a, report_a = campaign(shared)
        os.remove(os.path.join(shared, "journal.jsonl"))
        fuzzer_b, report_b = campaign(shared)
        assert encode_fuzz_report(report_a) == encode_fuzz_report(report_b)
        assert [(e.config, e.score, e.points) for e in fuzzer_a._pool] == \
            [(e.config, e.score, e.points) for e in fuzzer_b._pool]
        assert report_b.pool_evictions == report_a.pool_evictions

    def test_rediscoveries_collapse_into_one_finding(self, monkeypatch):
        # Identity mutation + an always-anomalous run that hits the same
        # coverage point: every iteration reproduces one bug. Guided
        # mode must journal it once and count the rediscoveries.
        import repro.core.fuzz.fuzzer as fuzzer_mod

        monkeypatch.setattr(fuzzer_mod, "mutate",
                            lambda gamma, rng, rounds=1: gamma)
        baseline = run_test(quick_config(nic="cx5", num_msgs=1,
                                         message_size=2048))

        def run_fn(config):
            coverage.current().live.hit("test.domain", "same-bug")
            return baseline

        coverage.enable()
        fuzzer = LuminaFuzzer(_base(nic="cx5"), seed=5, run_fn=run_fn,
                              anomaly_threshold=-1.0,
                              initial_pool=[_base(nic="cx5").traffic])
        seeds_before = fuzzer._next_seed
        report = fuzzer.run(iterations=3, batch_size=1)
        assert len(report.findings) == 1
        assert report.findings[0].count == 3
        assert report.rediscoveries == 2
        assert " x3" in report.findings[0].summary()
        # Rediscoveries never mint a fresh run seed: 3 candidate seeds
        # plus exactly one finding seed (not three).
        assert fuzzer._next_seed == seeds_before + 3 + 1

    def test_dedup_key_stable_across_store_replay(self, tmp_path):
        def campaign(directory):
            coverage.enable()
            try:
                fuzzer = LuminaFuzzer(_base(), seed=1,
                                      anomaly_threshold=2.5)
                report = fuzzer.run(iterations=8, batch_size=4,
                                    campaign_dir=directory)
                return sorted(fuzzer._findings_by_key), report
            finally:
                coverage.disable()

        shared = str(tmp_path / "campaign")
        keys_a, report_a = campaign(shared)
        os.remove(os.path.join(shared, "journal.jsonl"))
        keys_b, report_b = campaign(shared)
        assert keys_a == keys_b
        assert report_a.rediscoveries == report_b.rediscoveries
        assert [f.count for f in report_a.findings] == \
            [f.count for f in report_b.findings]

    def test_novelty_never_persisted_to_store_entries(self, tmp_path):
        from repro.store import CampaignStore

        coverage.enable()
        try:
            fuzzer = LuminaFuzzer(_base(), seed=1, anomaly_threshold=2.5)
            report = fuzzer.run(iterations=8, batch_size=4,
                                campaign_dir=str(tmp_path / "campaign"))
        finally:
            coverage.disable()
        # Selection assigned novelty to at least one journaled finding…
        assert any(f.score.novelty for f in report.findings)
        # …but every cached candidate score stays campaign-neutral.
        store = CampaignStore(str(tmp_path / "campaign" / "store"))
        fps = list(store.fingerprints("score"))
        assert fps
        for fp in fps:
            assert "novelty" not in store.get(fp)

    def test_guided_differs_from_blind_but_both_deterministic(self):
        def run(guided):
            coverage.enable()
            try:
                fuzzer = LuminaFuzzer(_base(), seed=7,
                                      anomaly_threshold=2.5)
                report = fuzzer.run(iterations=6, batch_size=2,
                                    coverage_fitness=guided)
                return encode_fuzz_report(report)
            finally:
                coverage.disable()

        guided = run(True)
        blind = run(False)
        assert guided == run(True)
        assert blind == run(False)
        # The modes really select differently: guided pool scores carry
        # the novelty bonus.
        assert guided != blind
