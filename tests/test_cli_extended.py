"""CLI coverage for the suite/incast commands and dumper-pool details."""

import pytest

from repro.__main__ import main
from repro.core.testbed import build_testbed
from repro import quick_config


class TestSuiteCli:
    def test_failing_nic_returns_nonzero(self, capsys):
        code = main(["suite", "cx6", "--checks", "ets-work-conservation"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_passing_nic_returns_zero(self, capsys):
        code = main(["suite", "cx5", "--checks", "ets-work-conservation"])
        assert code == 0


class TestIncastCli:
    def test_incast_command_reports_metrics(self, capsys):
        code = main(["incast", "--senders", "2", "--messages", "2",
                     "--size", str(64 * 1024)])
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregate goodput" in out
        assert "fairness (Jain)" in out
        assert "capture integrity: PASS" in out

    def test_incast_with_shallow_queue_shows_drops(self, capsys):
        code = main(["incast", "--senders", "4", "--messages", "3",
                     "--queue-kb", "150"])
        out = capsys.readouterr().out
        assert code == 0
        drops_line = next(l for l in out.splitlines()
                          if l.startswith("switch drops"))
        assert int(drops_line.split()[-1]) > 0


class TestFuzzCliGuards:
    def test_fuzz_without_config_or_target_errors(self, capsys):
        code = main(["fuzz"])
        assert code == 2
        assert "provide a config file or --target" in capsys.readouterr().err


class TestDumperPoolDetails:
    def test_weight_derived_from_capacity(self, sim):
        from repro.dumper.pool import DumperPool
        from repro.switch.pipeline import TofinoSwitch
        from repro.sim.rng import SimRandom
        from repro.net.link import gbps

        switch = TofinoSwitch(sim, "sw", SimRandom(1))
        pool = DumperPool(sim)
        fast = pool.add_server(switch, gbps(100), num_cores=8,
                               core_service_ns=170)
        slow = pool.add_server(switch, gbps(100), num_cores=2,
                               core_service_ns=170)
        weights = {t.port.name: t.weight for t in switch.mirror.targets}
        assert weights["sw->dumper0"] > weights["sw->dumper1"]
        assert fast.capacity_pps > slow.capacity_pps

    def test_total_buffered_across_pool(self):
        testbed = build_testbed(quick_config(num_msgs=2, message_size=2048))
        from repro.core.trafficgen import TrafficSession

        session = TrafficSession(testbed, testbed.config.traffic)
        session.connect_all()
        session.start()
        testbed.sim.run()
        assert testbed.dumpers.total_buffered == \
            sum(s.buffered_records for s in testbed.dumpers.servers)
        assert testbed.dumpers.total_buffered > 0
        assert testbed.dumpers.total_discards == 0
