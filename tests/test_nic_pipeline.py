"""NIC-level unit tests: TX arbitration, RX ordering, pipeline quirks."""

import pytest

from repro import quick_config
from repro.core.testbed import build_testbed
from repro.net.headers import Opcode
from repro.net.packet import Packet
from repro.rdma.verbs import CompletionQueue, Verb, WorkRequest


def make_pair(nic="ideal", seed=3, **cfg_kwargs):
    testbed = build_testbed(quick_config(nic=nic, seed=seed, **cfg_kwargs))
    req_cq, resp_cq = CompletionQueue(), CompletionQueue()
    req = testbed.requester.nic.create_qp(req_cq, testbed.requester.ips[0])
    resp = testbed.responder.nic.create_qp(resp_cq, testbed.responder.ips[0])
    req.connect(testbed.responder.ips[0], resp.qp_num, resp.initial_psn)
    resp.connect(testbed.requester.ips[0], req.qp_num, req.initial_psn)
    return testbed, req, resp, req_cq


class TestTxPath:
    def test_control_queue_preempts_data(self):
        # Queue a large data backlog, then a control packet: the control
        # packet must leave before the remaining data packets.
        testbed, req, resp, _ = make_pair()
        nic = testbed.requester.nic
        order = []
        nic.port.tx_tap = lambda p: order.append(p.bth.opcode)
        req.post_send(WorkRequest(verb=Verb.WRITE, length=16 * 1024))
        # Inject a control packet right away (CNP addressed to peer).
        nic.send_control(req.build_cnp())
        testbed.sim.run()
        first_cnp = order.index(Opcode.CNP)
        assert first_cnp <= 1  # at most one data packet slips out first

    def test_tx_serialises_back_to_back(self):
        testbed, req, resp, _ = make_pair()
        nic = testbed.requester.nic
        times = []
        nic.port.tx_tap = lambda p: times.append(testbed.sim.now)
        req.post_send(WorkRequest(verb=Verb.WRITE, length=4 * 1024))
        testbed.sim.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        ser = nic.port.serialization_delay_ns(1024 + 58 + 16)
        # Data packets leave one serialisation apart (line rate).
        assert all(abs(g - ser) <= ser * 0.2 for g in gaps[:2])

    def test_pacing_spreads_packets_when_throttled(self):
        testbed, req, resp, _ = make_pair()
        req.dcqcn.handle_cnp()
        req.dcqcn.handle_cnp()  # rate ~ 25 Gbps of 100
        nic = testbed.requester.nic
        times = []
        nic.port.tx_tap = lambda p: times.append(testbed.sim.now)
        req.post_send(WorkRequest(verb=Verb.WRITE, length=4 * 1024))
        testbed.sim.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        line_gap = nic.port.serialization_delay_ns(1098)
        assert min(gaps) > 2 * line_gap  # visibly paced below line rate


class TestRxPath:
    def test_rx_pipeline_never_reorders(self):
        # Jittered per-packet latency must not swap delivery order: the
        # dispatch floor enforces FIFO (regression for an actual bug).
        testbed, req, resp, cq = make_pair(nic="cx5", seed=11)
        for _ in range(5):
            req.post_send(WorkRequest(verb=Verb.WRITE, length=10 * 1024))
        testbed.sim.run()
        assert len(cq.poll(10)) == 5
        assert testbed.responder.nic.counters["out_of_sequence"] == 0
        assert testbed.responder.nic.counters["nak_sent"] == 0

    def test_non_roce_packets_ignored(self):
        testbed, req, resp, _ = make_pair()
        nic = testbed.responder.nic
        before = nic.counters["rx_packets"]
        nic.handle_packet(nic.port, Packet(payload_len=100))  # plain L2
        testbed.sim.run()
        assert nic.counters["rx_packets"] == before

    def test_unknown_qp_packet_dropped_silently(self):
        testbed, req, resp, _ = make_pair()
        packet = req.pending_tx and None
        req.post_send(WorkRequest(verb=Verb.WRITE, length=1024))
        stray = req.dequeue_tx()
        stray.bth.dest_qp = 0xABCDEF  # nobody home
        testbed.responder.nic.handle_packet(testbed.responder.nic.port, stray)
        testbed.sim.run()
        # Counted as received, then discarded at dispatch.
        assert testbed.responder.nic.counters["rx_packets"] >= 1

    def test_corrupt_packet_counted_and_dropped(self):
        testbed, req, resp, _ = make_pair()
        req.post_send(WorkRequest(verb=Verb.WRITE, length=1024))
        packet = req.dequeue_tx()
        packet.icrc_ok = False
        testbed.responder.nic.handle_packet(testbed.responder.nic.port, packet)
        # Run shorter than the retransmission timeout: the corrupt copy
        # alone must not advance the receiver.
        testbed.sim.run_for(1_000_000)
        assert testbed.responder.nic.counters["rx_icrc_errors"] == 1
        assert resp.epsn == req.initial_psn  # never delivered


class TestStallModel:
    def test_stall_discards_everything(self):
        testbed, req, resp, _ = make_pair(nic="cx4")
        nic = testbed.requester.nic
        nic._stall_until = testbed.sim.now + 1_000_000
        req.post_send(WorkRequest(verb=Verb.WRITE, length=1024))
        packet = req.dequeue_tx()
        nic.handle_packet(nic.port, packet)
        assert nic.counters["rx_discards_phy"] == 1
        assert nic.counters["rx_packets"] == 0  # dropped before counting

    def test_stall_requires_distinct_qps(self):
        testbed, req, resp, _ = make_pair(nic="cx4")
        nic = testbed.requester.nic
        # The same QP entering the slow path repeatedly must not trip
        # the threshold (regression: per-packet counting caused false
        # stalls with a single lossy connection).
        for _ in range(30):
            nic.note_read_loss_event(req)
        assert nic.pipeline_stalls == 0

    def test_stall_triggers_on_threshold_distinct_qps(self):
        testbed, req, resp, cq = make_pair(nic="cx4")
        nic = testbed.requester.nic
        qps = [nic.create_qp(cq, testbed.requester.ips[0]) for _ in range(12)]
        for qp in qps:
            nic.note_read_loss_event(qp)
        assert nic.pipeline_stalls == 1

    def test_profiles_without_bug_never_stall(self):
        testbed, req, resp, cq = make_pair(nic="cx5")
        nic = testbed.requester.nic
        qps = [nic.create_qp(cq, testbed.requester.ips[0]) for _ in range(20)]
        for qp in qps:
            nic.note_read_loss_event(qp)
        assert nic.pipeline_stalls == 0


class TestEtsReconfiguration:
    def test_configure_ets_remaps_existing_qps(self):
        from repro.rdma.ets import EtsQueueConfig

        testbed, req, resp, _ = make_pair()
        nic = testbed.requester.nic
        nic.configure_ets([EtsQueueConfig(0, 0.5), EtsQueueConfig(1, 0.5)])
        # Existing QP got remapped to the first configured queue.
        assert req.ets_queue_index == 0
        nic.ets.assign(req, 1)
        assert req.ets_queue_index == 1
