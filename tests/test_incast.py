"""Tests for the N-to-1 incast extension topology."""

import pytest

from repro.core.config import ConfigError
from repro.core.incast import IncastConfig, jain_fairness, run_incast


@pytest.fixture(scope="module")
def deep_buffer():
    return run_incast(IncastConfig(num_senders=4, nic_type="cx6",
                                   num_msgs_per_sender=8,
                                   message_size=256 * 1024, seed=55))


@pytest.fixture(scope="module")
def shallow_buffer():
    return run_incast(IncastConfig(num_senders=4, nic_type="cx6",
                                   num_msgs_per_sender=8,
                                   message_size=256 * 1024,
                                   receiver_queue_bytes=200 * 1024, seed=55))


@pytest.fixture(scope="module")
def dcqcn_marked():
    return run_incast(IncastConfig(num_senders=4, nic_type="cx6",
                                   num_msgs_per_sender=8,
                                   message_size=256 * 1024,
                                   ecn_threshold_kb=100, seed=55))


class TestJainFairness:
    def test_perfect_fairness(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 0.0
        assert jain_fairness([0.0, 0.0]) == 0.0


class TestDeepBufferIncast:
    def test_aggregate_saturates_receiver_link(self, deep_buffer):
        # 4x100G senders into one 100G receiver: aggregate goodput is
        # the bottleneck line rate (minus header overhead).
        assert deep_buffer.aggregate_goodput_bps > 85e9

    def test_fan_in_is_fair(self, deep_buffer):
        assert deep_buffer.fairness > 0.95

    def test_no_losses_with_deep_buffers(self, deep_buffer):
        assert sum(deep_buffer.per_sender_retransmits.values()) == 0
        assert deep_buffer.aborted_senders == 0

    def test_trace_capture_is_complete(self, deep_buffer):
        assert deep_buffer.integrity.ok
        # 4 senders x 8 msgs x 256 packets of data plus ACKs.
        assert len(deep_buffer.trace) > 4 * 8 * 256

    def test_one_connection_per_sender(self, deep_buffer):
        data_conns = {p.conn_key for p in deep_buffer.trace.data_packets()}
        assert len(data_conns) == 4


class TestShallowBufferIncast:
    def test_congestion_drops_cause_retransmission_storm(self, shallow_buffer):
        # Tail drops at the bottleneck queue + Go-back-N = many replays.
        assert sum(shallow_buffer.per_sender_retransmits.values()) > 100

    def test_fairness_collapses(self, shallow_buffer, deep_buffer):
        assert shallow_buffer.fairness < deep_buffer.fairness - 0.2

    def test_drops_visible_at_switch_port(self, shallow_buffer):
        ports = shallow_buffer.switch_counters["ports"]
        drops = sum(p["tx_drops"] for p in ports.values())
        assert drops > 0

    def test_everyone_still_finishes(self, shallow_buffer):
        assert shallow_buffer.aborted_senders == 0


class TestDcqcnIncast:
    def test_marks_generated_at_fan_in(self, dcqcn_marked):
        assert dcqcn_marked.switch_counters["ecn_marked_by_queue"] > 0

    def test_no_losses_thanks_to_backpressure(self, dcqcn_marked):
        assert sum(dcqcn_marked.per_sender_retransmits.values()) == 0

    def test_control_loop_stays_fair(self, dcqcn_marked):
        assert dcqcn_marked.fairness > 0.9

    def test_cnps_reach_every_sender(self, dcqcn_marked):
        cnp_targets = {p.record.ip.dst_ip for p in dcqcn_marked.trace.cnps()}
        assert len(cnp_targets) == 4


class TestConfigValidation:
    def test_needs_a_sender(self):
        with pytest.raises(ConfigError):
            IncastConfig(num_senders=0)

    def test_positive_geometry(self):
        with pytest.raises(ConfigError):
            IncastConfig(message_size=0)
        with pytest.raises(ConfigError):
            IncastConfig(tx_depth=0)

    def test_deterministic(self):
        a = run_incast(IncastConfig(num_senders=2, num_msgs_per_sender=2,
                                    message_size=64 * 1024, seed=9))
        b = run_incast(IncastConfig(num_senders=2, num_msgs_per_sender=2,
                                    message_size=64 * 1024, seed=9))
        assert a.per_sender_goodput_bps == b.per_sender_goodput_bps
