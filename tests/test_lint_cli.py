"""End-to-end tests for the repro-lint front end.

Covers the acceptance criteria: the repo tip lints clean (the
meta-test CI gates on), a scratch tree seeded with a DET001 violation
fails, the baseline masks pre-existing findings until
--update-baseline refreshes it, and both entry points
(``python -m repro.lint`` and ``python -m repro lint``) agree.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint.baseline import Baseline
from repro.lint.cli import default_root, lint_tree, main

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


CLEAN_MODULE = """
    def f(sim, fn):
        return sim.schedule(10, fn)
"""

DET001_VIOLATION = """
    import time

    def now_ns():
        return time.time()
"""


# ----------------------------------------------------------------------
# The meta-test: the repository tip must lint clean.
# ----------------------------------------------------------------------
def test_repo_tip_is_clean_in_process(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_repo_tip_is_clean_via_module_entry():
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    for cmd in (["-m", "repro.lint"], ["-m", "repro", "lint"]):
        proc = subprocess.run([sys.executable] + cmd, env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout


# ----------------------------------------------------------------------
# Seeded violations in a scratch tree (what the CI lint job gates on)
# ----------------------------------------------------------------------
def test_seeded_det001_violation_fails(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {
        "sim/model.py": DET001_VIOLATION,
        "core/ok.py": CLEAN_MODULE,
    })
    status = main([root, "--no-baseline"])
    out = capsys.readouterr().out
    assert status == 1
    assert "DET001" in out
    assert "pkg/sim/model.py" in out


def test_seeded_violation_fails_via_subprocess(tmp_path):
    """The exact shape of the CI gate: exit 1 on a fresh DET001."""
    root = write_tree(tmp_path / "pkg", {"sim/clock.py": DET001_VIOLATION})
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", root, "--no-baseline"],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 1
    assert "DET001" in proc.stdout


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/ok.py": CLEAN_MODULE})
    assert main([root, "--no-baseline"]) == 0


def test_parse_error_exits_two(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/broken.py": "def f(:\n"})
    assert main([root, "--no-baseline"]) == 2
    assert "syntax error" in capsys.readouterr().err


def test_unknown_rule_code_exits_two(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/ok.py": CLEAN_MODULE})
    assert main([root, "--select", "NOPE123"]) == 2


# ----------------------------------------------------------------------
# JSON reporter
# ----------------------------------------------------------------------
def test_json_format(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    status = main([root, "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 1
    assert payload["summary"]["total"] == 1
    (finding,) = payload["findings"]
    assert finding["code"] == "DET001"
    assert finding["severity"] == "error"
    assert finding["path"] == "pkg/sim/model.py"
    assert finding["line"] == 5


# ----------------------------------------------------------------------
# Baseline lifecycle
# ----------------------------------------------------------------------
def test_baseline_masks_and_update_refreshes(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    baseline = str(tmp_path / "baseline.json")

    # 1. Unbaselined: fails.
    assert main([root, "--baseline", baseline]) == 1
    capsys.readouterr()

    # 2. Adopt the current findings as the baseline: now passes.
    assert main([root, "--baseline", baseline, "--update-baseline"]) == 0
    capsys.readouterr()
    assert main([root, "--baseline", baseline]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out

    # 3. A *new* violation still fails while the old one stays masked.
    write_tree(tmp_path / "pkg", {"rdma/fresh.py": """
        import random

        def f():
            return random.random()
    """})
    assert main([root, "--baseline", baseline]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out
    assert "model.py" not in out  # masked finding not reported


def test_baseline_survives_line_drift(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    baseline = str(tmp_path / "baseline.json")
    assert main([root, "--baseline", baseline, "--update-baseline"]) == 0
    # Insert lines above the finding: the fingerprint is content-based.
    path = tmp_path / "pkg" / "sim" / "model.py"
    path.write_text("# a comment\n# another\n" + path.read_text())
    capsys.readouterr()
    assert main([root, "--baseline", baseline]) == 0


def test_baseline_fingerprints_distinguish_duplicates(tmp_path):
    src = """
        import time

        def a():
            return time.time()

        def b():
            return time.time()
    """
    root = write_tree(tmp_path / "pkg", {"sim/model.py": src})
    findings, _stats = lint_tree(root)
    assert len(findings) == 2
    baseline = Baseline.from_findings(findings[:1])
    new, masked = baseline.split(findings)
    # Identical source lines: the Nth occurrence masks the Nth finding.
    assert len(masked) == 1 and len(new) == 1


def test_show_masked_lists_baselined_findings(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    baseline = str(tmp_path / "baseline.json")
    main([root, "--baseline", baseline, "--update-baseline"])
    capsys.readouterr()
    assert main([root, "--baseline", baseline, "--show-masked"]) == 0
    assert "DET001" in capsys.readouterr().out


def test_committed_baseline_is_loadable_and_current():
    from repro.lint.cli import default_baseline_path

    baseline = Baseline.load(default_baseline_path())
    findings, _ = lint_tree(default_root())
    new, _masked = baseline.split(findings)
    assert new == [], ("unbaselined lint findings on the repo tip: "
                       + ", ".join(f.location() for f in new))


# ----------------------------------------------------------------------
# Baseline hygiene: reasons and staleness
# ----------------------------------------------------------------------
def test_update_baseline_warns_on_todo_reasons(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    baseline = str(tmp_path / "baseline.json")
    assert main([root, "--baseline", baseline, "--update-baseline"]) == 0
    err = capsys.readouterr().err
    assert "TODO reason" in err
    (entry,) = json.loads(open(baseline).read())["findings"].values()
    assert entry["reason"].startswith("TODO")


def test_update_baseline_preserves_edited_reasons(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    baseline = str(tmp_path / "baseline.json")
    main([root, "--baseline", baseline, "--update-baseline"])
    doc = json.loads(open(baseline).read())
    (fp,) = doc["findings"]
    doc["findings"][fp]["reason"] = "scratch clock, asserted equal in CI"
    with open(baseline, "w") as handle:
        json.dump(doc, handle)
    capsys.readouterr()
    # Re-adopting the same findings keeps the hand-written reason and
    # no longer warns.
    assert main([root, "--baseline", baseline, "--update-baseline"]) == 0
    assert "TODO reason" not in capsys.readouterr().err
    entry = json.loads(open(baseline).read())["findings"][fp]
    assert entry["reason"] == "scratch clock, asserted equal in CI"


def test_stale_baseline_entry_fails_full_run(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    baseline = str(tmp_path / "baseline.json")
    main([root, "--baseline", baseline, "--update-baseline"])
    # Fix the violation: its baseline entry is now stale, and a full
    # run must say so.
    write_tree(tmp_path / "pkg", {"sim/model.py": CLEAN_MODULE})
    capsys.readouterr()
    assert main([root, "--baseline", baseline]) == 1
    err = capsys.readouterr().err
    assert "stale baseline" in err and "--prune-baseline" in err
    # --select and --no-baseline runs can't judge staleness: no failure.
    assert main([root, "--baseline", baseline, "--select", "DET002"]) == 0
    assert main([root, "--no-baseline"]) == 0


def test_prune_baseline_drops_stale_entries(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    baseline = str(tmp_path / "baseline.json")
    main([root, "--baseline", baseline, "--update-baseline"])
    write_tree(tmp_path / "pkg", {"sim/model.py": CLEAN_MODULE})
    capsys.readouterr()
    assert main([root, "--baseline", baseline, "--prune-baseline"]) == 0
    assert "1 stale entry dropped" in capsys.readouterr().out
    assert json.loads(open(baseline).read())["findings"] == {}
    assert main([root, "--baseline", baseline]) == 0


def test_committed_baseline_reasons_are_justified():
    from repro.lint.cli import default_baseline_path

    baseline = Baseline.load(default_baseline_path())
    assert baseline.reasonless_fingerprints() == [], (
        "baseline entries without a justification reason")


# ----------------------------------------------------------------------
# --changed: the fast CI pre-gate
# ----------------------------------------------------------------------
def git(cwd, *argv):
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@example.com",
         *argv],
        cwd=cwd, check=True, capture_output=True)


def test_changed_lints_only_touched_files(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {
        "sim/model.py": CLEAN_MODULE,
        "rdma/old.py": DET001_VIOLATION,  # pre-existing, committed
    })
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "seed")
    # Touch one file with a fresh violation; leave old.py alone.
    write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    assert main([root, "--no-baseline", "--changed", "HEAD"]) == 1
    out = capsys.readouterr().out
    assert "pkg/sim/model.py" in out
    assert "old.py" not in out


def test_changed_includes_untracked_files(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": CLEAN_MODULE})
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "seed")
    write_tree(tmp_path / "pkg", {"sim/fresh.py": DET001_VIOLATION})
    assert main([root, "--no-baseline", "--changed"]) == 1
    assert "pkg/sim/fresh.py" in capsys.readouterr().out


def test_changed_with_no_diff_exits_zero(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": CLEAN_MODULE})
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "seed")
    assert main([root, "--no-baseline", "--changed"]) == 0
    assert "no python files changed" in capsys.readouterr().out


def test_changed_outside_git_repo_exits_two(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": CLEAN_MODULE})
    assert main([root, "--no-baseline", "--changed"]) == 2
    assert "git diff" in capsys.readouterr().err


# ----------------------------------------------------------------------
# --graph
# ----------------------------------------------------------------------
GRAPH_FILES = {
    "pkg/sim/a.py": """
        from ..util.b import helper

        def entry():
            return helper()
    """,
    "pkg/util/b.py": """
        def helper():
            return 1
    """,
}


def test_graph_text_output(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {
        rel[len("pkg/"):]: src for rel, src in GRAPH_FILES.items()})
    assert main([root, "--graph"]) == 0
    out = capsys.readouterr().out
    assert "pkg.sim.a.entry" in out
    assert "-> pkg.util.b.helper" in out
    assert out.rstrip().splitlines()[-1].startswith("callgraph:")


def test_graph_json_output(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {
        rel[len("pkg/"):]: src for rel, src in GRAPH_FILES.items()})
    assert main([root, "--graph", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["modules"] == 2
    assert any(e["caller"] == "pkg.sim.a.entry"
               and e["callee"] == "pkg.util.b.helper"
               for e in doc["edges"])


def test_graph_on_repo_tip_succeeds(capsys):
    assert main(["--graph", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["functions"] > 500
    assert doc["summary"]["edges"] > 1000


# ----------------------------------------------------------------------
# --sarif
# ----------------------------------------------------------------------
def test_sarif_report_written(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    sarif = tmp_path / "out.sarif"
    assert main([root, "--no-baseline", "--sarif", str(sarif)]) == 1
    doc = json.loads(sarif.read_text())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    (result,) = run["results"]
    assert result["ruleId"] == "DET001"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "pkg/sim/model.py"
    assert loc["region"]["startLine"] == 5
    # Rule metadata is indexable for code scanning.
    rules = run["tool"]["driver"]["rules"]
    assert rules[result["ruleIndex"]]["id"] == "DET001"


def test_sarif_masked_findings_excluded(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": DET001_VIOLATION})
    baseline = str(tmp_path / "baseline.json")
    main([root, "--baseline", baseline, "--update-baseline"])
    sarif = tmp_path / "out.sarif"
    capsys.readouterr()
    assert main([root, "--baseline", baseline, "--sarif", str(sarif)]) == 0
    assert json.loads(sarif.read_text())["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# Misc front-end behaviour
# ----------------------------------------------------------------------
def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "DET004",
                 "EXEC001", "TEL001", "API001"):
        assert code in out


def test_nonexistent_root_exits_two(tmp_path):
    assert main([str(tmp_path / "missing")]) == 2


def test_select_limits_scan(tmp_path, capsys):
    root = write_tree(tmp_path / "pkg", {"sim/model.py": """
        import time
        import random

        def f():
            return time.time() + random.random()
    """})
    assert main([root, "--no-baseline", "--select", "det001"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "DET002" not in out
