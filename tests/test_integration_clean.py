"""Integration tests: clean (event-free) end-to-end runs per verb."""

import pytest

from conftest import run_scenario
from repro.net.headers import Opcode


class TestCleanWrite:
    def test_all_messages_complete(self):
        result = run_scenario(verb="write", num_msgs=5, message_size=4096)
        assert result.ok
        messages = result.traffic_log.all_messages
        assert len(messages) == 5
        assert all(m.ok for m in messages)

    def test_packet_count_matches_geometry(self):
        # 5 msgs * 4 packets data + 5 ACKs = 25 RoCE packets.
        result = run_scenario(verb="write", num_msgs=5, message_size=4096)
        assert len(result.trace.data_packets()) == 20
        assert len(result.trace.acks()) == 5
        assert len(result.trace) == 25

    def test_opcode_sequence_per_message(self):
        result = run_scenario(verb="write", num_msgs=1, message_size=4096)
        opcodes = [p.opcode for p in result.trace.data_packets()]
        assert opcodes == [
            Opcode.RDMA_WRITE_FIRST,
            Opcode.RDMA_WRITE_MIDDLE,
            Opcode.RDMA_WRITE_MIDDLE,
            Opcode.RDMA_WRITE_LAST,
        ]

    def test_single_packet_message_uses_only(self):
        result = run_scenario(verb="write", num_msgs=1, message_size=512)
        opcodes = [p.opcode for p in result.trace.data_packets()]
        assert opcodes == [Opcode.RDMA_WRITE_ONLY]

    def test_psns_are_consecutive(self):
        result = run_scenario(verb="write", num_msgs=2, message_size=4096)
        psns = [p.psn for p in result.trace.data_packets()]
        first = psns[0]
        assert psns == [(first + i) & 0xFFFFFF for i in range(8)]

    def test_all_iterations_are_one(self):
        result = run_scenario(verb="write", num_msgs=3, message_size=4096)
        assert all(p.iteration == 1 for p in result.trace)

    def test_no_retransmission_counters(self):
        result = run_scenario(verb="write", num_msgs=3, message_size=4096)
        for host in (result.requester_counters, result.responder_counters):
            assert host["retransmitted_packets"] == 0
            assert host["out_of_sequence"] == 0
            assert host["local_ack_timeout_err"] == 0

    def test_goodput_positive_and_below_line_rate(self):
        result = run_scenario(verb="write", num_msgs=10, message_size=65536,
                              barrier_sync=False, tx_depth=4)
        goodput = result.traffic_log.total_goodput_bps()
        assert 0 < goodput < 100e9


class TestCleanSend:
    def test_send_completes(self):
        result = run_scenario(verb="send", num_msgs=4, message_size=2048)
        assert result.ok
        assert len(result.traffic_log.all_messages) == 4

    def test_send_opcodes(self):
        result = run_scenario(verb="send", num_msgs=1, message_size=2048)
        opcodes = [p.opcode for p in result.trace.data_packets()]
        assert opcodes == [Opcode.SEND_FIRST, Opcode.SEND_LAST]

    def test_send_has_no_reth(self):
        result = run_scenario(verb="send", num_msgs=1, message_size=2048)
        assert all(p.record.reth is None for p in result.trace.data_packets())


class TestCleanRead:
    def test_read_completes(self):
        result = run_scenario(verb="read", num_msgs=4, message_size=4096)
        assert result.ok
        assert all(m.ok for m in result.traffic_log.all_messages)

    def test_read_request_and_response_streams(self):
        result = run_scenario(verb="read", num_msgs=2, message_size=4096)
        requests = result.trace.by_opcode(Opcode.RDMA_READ_REQUEST)
        responses = [p for p in result.trace if p.opcode.is_read_response]
        assert len(requests) == 2
        assert len(responses) == 8

    def test_response_psns_extend_request_psn(self):
        result = run_scenario(verb="read", num_msgs=1, message_size=4096)
        request = result.trace.by_opcode(Opcode.RDMA_READ_REQUEST)[0]
        responses = [p for p in result.trace if p.opcode.is_read_response]
        assert [p.psn for p in responses] == \
               [(request.psn + i) & 0xFFFFFF for i in range(4)]

    def test_read_requests_carry_reth(self):
        result = run_scenario(verb="read", num_msgs=1, message_size=4096)
        request = result.trace.by_opcode(Opcode.RDMA_READ_REQUEST)[0]
        assert request.record.reth is not None
        assert request.record.reth.dma_length == 4096

    def test_no_acks_for_read(self):
        result = run_scenario(verb="read", num_msgs=2, message_size=4096)
        assert len(result.trace.naks()) == 0


class TestVerbCombination:
    def test_send_read_alternates(self):
        result = run_scenario(verb="send,read", num_msgs=4, message_size=2048)
        assert result.ok
        verbs = [m.verb.value for m in sorted(result.traffic_log.all_messages,
                                              key=lambda m: m.msg_index)]
        assert verbs == ["send", "read", "send", "read"]


class TestMultiConnection:
    def test_messages_complete_on_every_connection(self):
        result = run_scenario(verb="write", num_connections=4, num_msgs=3,
                              message_size=2048)
        assert result.ok
        for qp in result.traffic_log.per_qp:
            assert len(qp.completed_messages) == 3

    def test_one_data_connection_per_qp(self):
        result = run_scenario(verb="write", num_connections=4, num_msgs=2,
                              message_size=2048)
        data_conns = {p.conn_key for p in result.trace.data_packets()}
        assert len(data_conns) == 4

    def test_qpns_are_distinct(self):
        result = run_scenario(verb="write", num_connections=8, num_msgs=1,
                              message_size=1024)
        qpns = {meta.responder_qpn for meta in result.metadata}
        assert len(qpns) == 8


class TestIntegrityEndToEnd:
    @pytest.mark.parametrize("verb", ["write", "send", "read"])
    def test_integrity_passes(self, verb):
        result = run_scenario(verb=verb, num_msgs=3, message_size=4096)
        assert result.integrity.ok

    def test_mirror_seqs_consecutive(self):
        result = run_scenario(verb="write", num_msgs=3, message_size=4096)
        seqs = [p.mirror_seq for p in result.trace]
        assert seqs == list(range(len(seqs)))

    def test_switch_timestamps_monotonic_in_seq_order(self):
        result = run_scenario(verb="write", num_msgs=3, message_size=4096)
        stamps = [p.timestamp_ns for p in result.trace]
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))

    def test_determinism_same_seed_same_trace(self):
        a = run_scenario(verb="write", num_msgs=3, seed=77)
        b = run_scenario(verb="write", num_msgs=3, seed=78)
        # Different seeds give different QPNs.
        assert a.metadata[0].responder_qpn != b.metadata[0].responder_qpn

    def test_mirroring_off_yields_empty_trace_and_skips_integrity(self):
        result = run_scenario(verb="write", num_msgs=2, mirroring=False,
                              num_dumpers=0)
        assert len(result.trace) == 0
        assert result.traffic_log.all_messages
