"""Property-based tests (hypothesis) for core data structures/invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.config import DataPacketEvent, TrafficConfig
from repro.core.fuzz.mutate import mutate
from repro.core.trace import reconstruct_trace
from repro.dumper.records import make_record, parse_record
from repro.net.addressing import int_to_ip, int_to_mac, ip_to_int, mac_to_int
from repro.net.headers import (
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    RdmaExtendedHeader,
    UdpHeader,
)
from repro.net.packet import Packet
from repro.rdma.qp import psn_add, psn_distance, psn_geq
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.switch.itertrack import IterTracker

psn_values = st.integers(min_value=0, max_value=0xFFFFFF)
mac_values = st.integers(min_value=0, max_value=0xFFFFFFFFFFFF)
ip_values = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestHeaderRoundtrips:
    @given(dst=mac_values, src=mac_values,
           ethertype=st.integers(0, 0xFFFF))
    def test_ethernet(self, dst, src, ethertype):
        header = EthernetHeader(dst_mac=dst, src_mac=src, ethertype=ethertype)
        assert EthernetHeader.unpack(header.pack()) == header

    @given(src=ip_values, dst=ip_values, length=st.integers(20, 0xFFFF),
           ttl=st.integers(0, 255), dscp=st.integers(0, 63),
           ecn=st.integers(0, 3), ident=st.integers(0, 0xFFFF))
    def test_ipv4(self, src, dst, length, ttl, dscp, ecn, ident):
        header = Ipv4Header(src_ip=src, dst_ip=dst, total_length=length,
                            ttl=ttl, dscp=dscp, ecn=ecn, identification=ident)
        assert Ipv4Header.unpack(header.pack()) == header

    @given(src=st.integers(0, 0xFFFF), dst=st.integers(0, 0xFFFF),
           length=st.integers(8, 0xFFFF))
    def test_udp(self, src, dst, length):
        header = UdpHeader(src_port=src, dst_port=dst, length=length)
        assert UdpHeader.unpack(header.pack()) == header

    @given(opcode=st.sampled_from(list(Opcode)), solicited=st.booleans(),
           migreq=st.booleans(), pad=st.integers(0, 3),
           pkey=st.integers(0, 0xFFFF), qp=st.integers(0, 0xFFFFFF),
           ack=st.booleans(), psn=psn_values, becn=st.booleans())
    def test_bth(self, opcode, solicited, migreq, pad, pkey, qp, ack, psn, becn):
        header = BaseTransportHeader(
            opcode=opcode, solicited=solicited, migreq=migreq, pad_count=pad,
            pkey=pkey, dest_qp=qp, ack_request=ack, psn=psn, becn=becn)
        assert BaseTransportHeader.unpack(header.pack()) == header

    @given(va=st.integers(0, 2**64 - 1), rkey=st.integers(0, 2**32 - 1),
           length=st.integers(0, 2**32 - 1))
    def test_reth(self, va, rkey, length):
        header = RdmaExtendedHeader(virtual_address=va, rkey=rkey,
                                    dma_length=length)
        assert RdmaExtendedHeader.unpack(header.pack()) == header

    @given(syndrome=st.integers(0, 255), msn=psn_values)
    def test_aeth(self, syndrome, msn):
        header = AckExtendedHeader(syndrome=syndrome, msn=msn)
        assert AckExtendedHeader.unpack(header.pack()) == header

    @given(mac=mac_values)
    def test_mac_string_roundtrip(self, mac):
        assert mac_to_int(int_to_mac(mac)) == mac

    @given(ip=ip_values)
    def test_ip_string_roundtrip(self, ip):
        assert ip_to_int(int_to_ip(ip)) == ip


class TestPsnArithmetic:
    @given(psn=psn_values, delta=st.integers(0, 0xFFFFFF))
    def test_add_stays_in_24_bits(self, psn, delta):
        assert 0 <= psn_add(psn, delta) <= 0xFFFFFF

    @given(psn=psn_values, delta=st.integers(0, 1 << 22))
    def test_distance_inverts_add(self, psn, delta):
        assert psn_distance(psn_add(psn, delta), psn) == delta

    @given(psn=psn_values)
    def test_geq_reflexive(self, psn):
        assert psn_geq(psn, psn)

    @given(psn=psn_values, delta=st.integers(1, (1 << 23) - 1))
    def test_geq_orders_within_window(self, psn, delta):
        later = psn_add(psn, delta)
        assert psn_geq(later, psn)
        assert not psn_geq(psn, later)


#: PSN streams as the Fig. 3 algorithm is defined on them: a start
#: point plus bounded steps (forward progress and Go-back-N rewinds).
#: Unconstrained 24-bit jumps break the uniqueness claim in two ways no
#: tracker can repair: a rewind of >= 2^23 reads as forward progress
#: (serial-number ambiguity, forbidden by the IB transport window), and
#: a stream whose forward travel wraps the whole 2^24 space revisits
#: PSNs at an unchanged ITER — so forward steps are kept small enough
#: that 59 of them cannot complete a wrap.
_psn_steps = st.integers(min_value=-(1 << 22), max_value=(1 << 17))


@st.composite
def psn_streams(draw):
    start = draw(psn_values)
    steps = draw(st.lists(_psn_steps, min_size=0, max_size=59))
    psns = [start]
    for step in steps:
        psns.append((psns[-1] + step) & 0xFFFFFF)
    return psns


class TestIterTrackerInvariants:
    @given(psns=psn_streams())
    def test_psn_iter_pairs_unique_per_connection(self, psns):
        # §3.3: (PSN, ITER) uniquely identifies every packet.
        tracker = IterTracker()
        seen = set()
        for psn in psns:
            iteration = tracker.update(1, 2, 3, psn)
            assert (psn, iteration) not in seen
            seen.add((psn, iteration))

    @given(psns=st.lists(psn_values, min_size=1, max_size=60))
    def test_iter_monotone_nondecreasing(self, psns):
        tracker = IterTracker()
        iters = [tracker.update(1, 2, 3, psn) for psn in psns]
        assert all(b >= a for a, b in zip(iters, iters[1:]))
        assert iters[0] == 1

    @given(start=psn_values, count=st.integers(1, 200))
    def test_monotone_stream_stays_iter_one(self, start, count):
        tracker = IterTracker()
        for i in range(count):
            assert tracker.update(1, 2, 3, psn_add(start, i)) == 1


class TestEngineInvariants:
    @given(delays=st.lists(st.integers(0, 10_000), min_size=1, max_size=50))
    def test_callbacks_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=30),
           until=st.integers(0, 1500))
    def test_run_until_never_executes_late_events(self, delays, until):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=until)
        assert all(d <= until for d in fired)
        assert sorted(fired) == sorted(d for d in delays if d <= until)


class TestRecordRoundtrip:
    @given(psn=psn_values, qpn=st.integers(0, 0xFFFFFF),
           seq=st.integers(0, 2**32), stamp=st.integers(0, 2**40),
           payload=st.integers(0, 1024), event=st.integers(0, 4))
    @settings(max_examples=50)
    def test_parse_inverts_make(self, psn, qpn, seq, stamp, payload, event):
        packet = Packet(
            eth=EthernetHeader(src_mac=seq, dst_mac=stamp),
            ip=Ipv4Header(src_ip=1, dst_ip=2, ttl=event),
            udp=UdpHeader(src_port=100, dst_port=4791),
            bth=BaseTransportHeader(opcode=Opcode.SEND_ONLY, dest_qp=qpn,
                                    psn=psn),
            payload_len=payload,
        )
        packet.ip.total_length = packet.size - 14
        packet.udp.length = packet.ip.total_length - 20
        parsed = parse_record(make_record(packet, 5, "d", 0))
        assert parsed.psn == psn
        assert parsed.dest_qp == qpn
        assert parsed.mirror_seq == seq
        assert parsed.switch_timestamp_ns == stamp
        assert parsed.event_type == event
        assert parsed.payload_len == payload


class TestTraceReconstruction:
    @given(order=st.permutations(list(range(12))))
    @settings(max_examples=30)
    def test_reconstruction_invariant_under_arrival_order(self, order):
        # §3.5: sorting by mirror sequence recovers the wire order no
        # matter how records are scattered across dumpers.
        def record(seq):
            packet = Packet(
                eth=EthernetHeader(src_mac=seq, dst_mac=seq * 10),
                ip=Ipv4Header(src_ip=1, dst_ip=2, ttl=0),
                udp=UdpHeader(dst_port=4791),
                bth=BaseTransportHeader(opcode=Opcode.SEND_ONLY, dest_qp=3,
                                        psn=100 + seq),
                payload_len=10,
            )
            packet.ip.total_length = packet.size - 14
            packet.udp.length = packet.ip.total_length - 20
            return make_record(packet, seq, "d", 0)

        shuffled = [record(i) for i in order]
        trace = reconstruct_trace(shuffled)
        assert [p.mirror_seq for p in trace] == list(range(12))
        assert [p.psn for p in trace] == [100 + i for i in range(12)]


class TestRandomness:
    @given(seed=st.integers(0, 2**31), base=st.integers(1, 10**9),
           frac=st.floats(0.0, 0.5, allow_nan=False))
    @settings(max_examples=100)
    def test_jitter_bounds(self, seed, base, frac):
        value = SimRandom(seed).jitter_ns(base, frac)
        assert 0 <= value
        assert abs(value - base) <= base * frac + 1


class TestMutationValidity:
    @given(seed=st.integers(0, 10_000), rounds=st.integers(1, 10))
    @settings(max_examples=50)
    def test_mutate_never_produces_invalid_config(self, seed, rounds):
        traffic = TrafficConfig(num_connections=4, message_size=10240,
                                data_pkt_events=(DataPacketEvent(1, 5, "drop"),))
        mutated = mutate(traffic, SimRandom(seed), rounds=rounds)
        # Construction succeeding means all invariants held; double-check
        # the cross-field ones the orchestrator relies on.
        for event in mutated.data_pkt_events:
            assert 1 <= event.qpn <= mutated.num_connections
            assert 1 <= event.psn <= mutated.packets_per_connection
