"""Unit tests for switch building blocks: events, tables, ITER, mirror."""

import pytest

from repro.net.headers import BaseTransportHeader, Ipv4Header, Opcode, UdpHeader
from repro.net.link import Node, connect, gbps
from repro.net.packet import EventType, Packet
from repro.sim.rng import SimRandom
from repro.switch.events import EventAction, EventEntry, RewriteRule
from repro.switch.itertrack import IterTracker
from repro.switch.mirror import MirrorBlock, MirrorConfigError
from repro.switch.tables import MatchActionTable


class TestEventEntry:
    def test_valid_entry(self):
        entry = EventEntry(src_ip=1, dst_ip=2, dst_qpn=3, psn=4, iteration=1,
                           action="drop")
        assert entry.key == (1, 2, 3, 4, 1)
        assert entry.hits == 0

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            EventEntry(1, 2, 3, 4, 1, action="teleport")

    def test_iteration_must_be_non_negative(self):
        with pytest.raises(ValueError):
            EventEntry(1, 2, 3, 4, -1, action="drop")

    def test_iteration_zero_is_the_wildcard(self):
        entry = EventEntry(1, 2, 3, 4, 0, action="drop")
        assert entry.iteration == 0

    def test_action_codes_map_to_event_types(self):
        assert EventAction.CODES["drop"] == EventType.DROP
        assert EventAction.CODES["ecn"] == EventType.ECN
        assert EventAction.CODES["corrupt"] == EventType.CORRUPT


class TestRewriteRule:
    def _packet(self, src_ip=7, migreq=False):
        return Packet(ip=Ipv4Header(src_ip=src_ip), udp=UdpHeader(),
                      bth=BaseTransportHeader(migreq=migreq))

    def test_unsupported_field_rejected(self):
        with pytest.raises(ValueError):
            RewriteRule(field_name="ttl", value=1)

    def test_wildcard_matches_any_source(self):
        rule = RewriteRule(field_name="migreq", value=1)
        assert rule.matches(self._packet(src_ip=1))
        assert rule.matches(self._packet(src_ip=2))

    def test_src_ip_filter(self):
        rule = RewriteRule(field_name="migreq", value=1, src_ip=7)
        assert rule.matches(self._packet(src_ip=7))
        assert not rule.matches(self._packet(src_ip=8))

    def test_non_roce_never_matches(self):
        rule = RewriteRule(field_name="migreq", value=1)
        assert not rule.matches(Packet())

    def test_apply_sets_migreq_and_counts(self):
        rule = RewriteRule(field_name="migreq", value=1)
        packet = self._packet(migreq=False)
        rule.apply(packet)
        assert packet.bth.migreq is True
        assert rule.hits == 1


class TestMatchActionTable:
    def _entry(self, psn=4, iteration=1, action="drop"):
        return EventEntry(1, 2, 3, psn, iteration, action)

    def test_install_and_lookup(self):
        table = MatchActionTable()
        entry = self._entry()
        table.install(entry)
        hit = table.lookup(1, 2, 3, 4, 1)
        assert hit is entry
        assert hit.hits == 1

    def test_miss_returns_none(self):
        table = MatchActionTable()
        table.install(self._entry(psn=4))
        assert table.lookup(1, 2, 3, 5, 1) is None
        assert table.lookup(1, 2, 3, 4, 2) is None

    def test_duplicate_key_rejected(self):
        table = MatchActionTable()
        table.install(self._entry())
        with pytest.raises(ValueError):
            table.install(self._entry(action="ecn"))

    def test_capacity_enforced(self):
        table = MatchActionTable(capacity=2)
        table.install(self._entry(psn=1))
        table.install(self._entry(psn=2))
        with pytest.raises(RuntimeError):
            table.install(self._entry(psn=3))

    def test_memory_accounting_is_about_1mb_for_100k_events(self):
        # §5: "approximately 1MB of on-chip memory to inject up to 100K
        # events" — entry cost must land in that ballpark.
        assert 5 <= EventEntry.ENTRY_BYTES <= 16
        table = MatchActionTable(capacity=140_000)
        table.install_all(self._entry(psn=p) for p in range(1000))
        projected = table.memory_bytes * 100
        assert 0.5e6 <= projected <= 2e6

    def test_clear(self):
        table = MatchActionTable()
        table.install(self._entry())
        table.clear()
        assert len(table) == 0
        assert table.lookup(1, 2, 3, 4, 1) is None


class TestIterTracker:
    def test_fig3_example(self):
        # Fig. 3: PSNs 1 2 3 4 | 2 3 4 | 3 4 with drops of 2 then 3.
        # Wire-visible sequence: 1 2 3 4 2 3 4 3 4 (the drops happen
        # after the switch), expected ITERs: 1 1 1 1 2 2 2 3 3.
        tracker = IterTracker()
        sequence = [1, 2, 3, 4, 2, 3, 4, 3, 4]
        iters = [tracker.update(10, 20, 5, psn) for psn in sequence]
        assert iters == [1, 1, 1, 1, 2, 2, 2, 3, 3]

    def test_equal_psn_starts_new_round(self):
        tracker = IterTracker()
        assert tracker.update(1, 2, 3, 7) == 1
        assert tracker.update(1, 2, 3, 7) == 2  # "not larger" includes equal

    def test_connections_are_independent(self):
        tracker = IterTracker()
        tracker.update(1, 2, 3, 100)
        tracker.update(1, 2, 3, 50)  # conn A now ITER 2
        assert tracker.update(9, 2, 3, 50) == 1  # conn B fresh

    def test_direction_matters(self):
        tracker = IterTracker()
        tracker.update(1, 2, 3, 100)
        assert tracker.update(2, 1, 3, 100) == 1  # reverse direction fresh

    def test_psn_wraparound_is_forward_motion(self):
        tracker = IterTracker()
        tracker.update(1, 2, 3, 0xFFFFFE)
        tracker.update(1, 2, 3, 0xFFFFFF)
        # Wrap to 0: serially later, not a retransmission.
        assert tracker.update(1, 2, 3, 0x000000) == 1

    def test_capacity_limit(self):
        tracker = IterTracker(max_connections=2)
        tracker.update(1, 2, 3, 1)
        tracker.update(4, 5, 6, 1)
        with pytest.raises(RuntimeError):
            tracker.update(7, 8, 9, 1)

    def test_peek_does_not_create_state(self):
        tracker = IterTracker()
        state = tracker.peek(1, 2, 3)
        assert state.last_psn is None
        assert len(tracker) == 0

    def test_memory_accounting(self):
        tracker = IterTracker()
        for conn in range(10):
            tracker.update(conn, 2, 3, 1)
        assert tracker.memory_bytes == 50

    def test_reset(self):
        tracker = IterTracker()
        tracker.update(1, 2, 3, 5)
        tracker.reset()
        assert len(tracker) == 0


class _PortSink(Node):
    def __init__(self, sim, name="dump"):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, port, packet):
        self.received.append(packet)


def _roce(src_port=0xC000):
    return Packet(ip=Ipv4Header(src_ip=1, dst_ip=2, ttl=64),
                  udp=UdpHeader(src_port=src_port, dst_port=4791),
                  bth=BaseTransportHeader(opcode=Opcode.SEND_ONLY, psn=5),
                  payload_len=64)


class TestMirrorBlock:
    def _block_with_targets(self, sim, n=2, weights=None):
        block = MirrorBlock(SimRandom(1))
        switch_node = _PortSink(sim, "sw")
        sinks = []
        for i in range(n):
            out = switch_node.add_port(gbps(100))
            sink = _PortSink(sim, f"d{i}")
            connect(out, sink.add_port(gbps(100)), 0)
            block.add_target(out, weight=(weights[i] if weights else 1))
            sinks.append(sink)
        return block, sinks

    def test_no_targets_returns_none(self, sim):
        block = MirrorBlock(SimRandom(1))
        assert block.mirror(_roce(), 100, EventType.NONE) is None

    def test_metadata_embedded(self, sim):
        block, _ = self._block_with_targets(sim, 1)
        clone = block.mirror(_roce(), now_ns=777, event_code=EventType.DROP)
        assert clone.is_mirror
        assert clone.ip.ttl == EventType.DROP
        assert clone.eth.src_mac == 0      # first mirror sequence number
        assert clone.eth.dst_mac == 777    # timestamp

    def test_sequence_increments(self, sim):
        block, _ = self._block_with_targets(sim, 1)
        clones = [block.mirror(_roce(), i, EventType.NONE) for i in range(5)]
        assert [c.eth.src_mac for c in clones] == [0, 1, 2, 3, 4]
        assert block.mirrored_packets == 5

    def test_original_packet_untouched(self, sim):
        block, _ = self._block_with_targets(sim, 1)
        packet = _roce()
        original_ttl = packet.ip.ttl
        block.mirror(packet, 1, EventType.ECN)
        assert packet.ip.ttl == original_ttl
        assert not packet.is_mirror

    def test_udp_port_randomised_for_rss(self, sim):
        block, _ = self._block_with_targets(sim, 1)
        ports = {block.mirror(_roce(), i, EventType.NONE).udp.dst_port
                 for i in range(50)}
        assert len(ports) > 10
        assert all(p != 4791 for p in ports)

    def test_udp_port_randomisation_can_be_disabled(self, sim):
        block = MirrorBlock(SimRandom(1), randomize_udp_port=False)
        node = _PortSink(sim, "sw")
        out = node.add_port(gbps(100))
        sink = _PortSink(sim, "d")
        connect(out, sink.add_port(gbps(100)), 0)
        block.add_target(out)
        clone = block.mirror(_roce(), 1, EventType.NONE)
        assert clone.udp.dst_port == 4791

    def test_corrupted_original_mirrored_intact(self, sim):
        # §3.4: the mirror is taken at ingress before the event acts.
        block, _ = self._block_with_targets(sim, 1)
        packet = _roce()
        packet.icrc_ok = False  # pretend corruption already flagged
        clone = block.mirror(packet, 1, EventType.CORRUPT)
        assert clone.icrc_ok

    def test_weighted_round_robin_distribution(self, sim):
        block, sinks = self._block_with_targets(sim, 2, weights=[3, 1])
        for i in range(400):
            block.mirror(_roce(), i, EventType.NONE)
        sim.run()
        assert len(sinks[0].received) == 300
        assert len(sinks[1].received) == 100

    def test_equal_weights_alternate(self, sim):
        block, sinks = self._block_with_targets(sim, 2)
        for i in range(10):
            block.mirror(_roce(), i, EventType.NONE)
        sim.run()
        assert len(sinks[0].received) == 5
        assert len(sinks[1].received) == 5

    def test_invalid_weight_rejected(self, sim):
        block, _ = self._block_with_targets(sim, 1)
        node = _PortSink(sim, "x")
        with pytest.raises(ValueError):
            block.add_target(node.add_port(gbps(10)), weight=0)

    def test_reset(self, sim):
        block, _ = self._block_with_targets(sim, 1)
        block.mirror(_roce(), 1, EventType.NONE)
        block.reset()
        assert block.mirror_seq == 0
        assert block.mirrored_packets == 0

    def test_pick_target_without_targets_raises(self, sim):
        # mirror() returns None gracefully, but the selector itself must
        # fail loudly (it used to be a bare assert, stripped by -O).
        block = MirrorBlock(SimRandom(1))
        with pytest.raises(MirrorConfigError, match="no dumper targets"):
            block._pick_target()

    def test_mirror_config_error_is_runtime_error(self, sim):
        assert issubclass(MirrorConfigError, RuntimeError)
