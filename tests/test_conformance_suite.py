"""Tests for the conformance suite (the paper's 'ImageNet-like benchmark')."""

import pytest

from repro.core.suite import CHECKS, CheckResult, Scorecard, run_conformance_suite


@pytest.fixture(scope="module")
def cards():
    """One full battery per NIC, shared across this module's tests."""
    return {nic: run_conformance_suite(nic)
            for nic in ("ideal", "cx4", "cx5", "cx6", "e810")}


class TestScorecard:
    def test_all_checks_run(self, cards):
        for card in cards.values():
            assert card.total == len(CHECKS)
            assert {r.name for r in card.results} == set(CHECKS)

    def test_ideal_profile_is_fully_conformant(self, cards):
        assert cards["ideal"].all_passed, cards["ideal"].render()

    def test_cx5_is_fully_conformant(self, cards):
        # CX5's bugs (MigReq slow path) need an E810 peer; on a
        # same-NIC battery it is clean — consistent with Table 2.
        assert cards["cx5"].all_passed, cards["cx5"].render()

    def test_cx6_fails_exactly_ets(self, cards):
        failed = {r.name for r in cards["cx6"].failures()}
        assert failed == {"ets-work-conservation"}

    def test_cx4_failures_match_its_bugs(self, cards):
        failed = {r.name for r in cards["cx4"].failures()}
        assert "counter-consistency" in failed       # implied_nak stuck
        assert "isolation-under-read-loss" in failed  # noisy neighbor
        assert "recovery-latency" in failed           # ~170 µs reaction
        assert "gbn-logic" not in failed              # §6.1: logic is fine

    def test_e810_failures_match_its_bugs(self, cards):
        failed = {r.name for r in cards["e810"].failures()}
        assert "counter-consistency" in failed        # cnpSent stuck
        assert "read-loss-recovery" in failed         # 83 ms slow path
        assert "isolation-under-read-loss" not in failed

    def test_every_nic_tolerates_reordering(self, cards):
        # Reordering costs one NAK + duplicate round on every model; no
        # NIC needs a timeout for it.
        for nic, card in cards.items():
            result = next(r for r in card.results
                          if r.name == "reorder-tolerance")
            assert result.passed, f"{nic}: {result.detail}"

    def test_every_nic_implements_rnr_flow_control(self, cards):
        for nic, card in cards.items():
            result = next(r for r in card.results
                          if r.name == "rnr-flow-control")
            assert result.passed, f"{nic}: {result.detail}"

    def test_every_nic_passes_gbn_logic(self, cards):
        # §6.1: "all the RNICs pass our FSM-based retransmission logic
        # check".
        for nic, card in cards.items():
            result = next(r for r in card.results if r.name == "gbn-logic")
            assert result.passed, f"{nic}: {result.detail}"

    def test_render_contains_all_checks(self, cards):
        text = cards["cx6"].render()
        for name in CHECKS:
            assert name in text
        assert "13/14" in text


class TestSuiteApi:
    def test_subset_selection(self):
        card = run_conformance_suite("ideal",
                                     checks=["gbn-logic", "cnp-generation"])
        assert card.total == 2

    def test_unknown_check_rejected(self):
        with pytest.raises(KeyError):
            run_conformance_suite("ideal", checks=["warp-drive"])

    def test_deterministic_for_seed(self):
        a = run_conformance_suite("cx6", seed=5,
                                  checks=["ets-work-conservation"])
        b = run_conformance_suite("cx6", seed=5,
                                  checks=["ets-work-conservation"])
        assert a.results[0].detail == b.results[0].detail

    def test_check_result_str(self):
        result = CheckResult("x", True, "fine")
        assert "PASS" in str(result)
        assert "FAIL" in str(CheckResult("x", False, "bad"))

    def test_empty_scorecard(self):
        card = Scorecard(nic="ideal")
        assert card.total == 0
        assert card.all_passed  # vacuously

    def test_cli_suite_command(self, capsys):
        from repro.__main__ import main

        code = main(["suite", "cx6", "--checks", "gbn-logic"])
        out = capsys.readouterr().out
        assert "Conformance scorecard: cx6" in out
        assert code == 0
