"""Unit tests for the Packet object: sizes, copies, mirror metadata, iCRC."""

import pytest

from repro.net.checksum import crc32_ib, icrc_for
from repro.net.headers import (
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    RdmaExtendedHeader,
    UdpHeader,
)
from repro.net.packet import EventType, Packet


def roce_packet(payload_len=1024, opcode=Opcode.RDMA_WRITE_ONLY,
                with_reth=True) -> Packet:
    return Packet(
        eth=EthernetHeader(dst_mac=2, src_mac=1),
        ip=Ipv4Header(src_ip=0x0A000001, dst_ip=0x0A000002),
        udp=UdpHeader(src_port=0xC123, dst_port=4791),
        bth=BaseTransportHeader(opcode=opcode, dest_qp=0x1234, psn=100),
        reth=RdmaExtendedHeader(dma_length=payload_len) if with_reth else None,
        payload_len=payload_len,
    )


class TestSizes:
    def test_l2_only_size(self):
        packet = Packet(payload_len=50)
        assert packet.size == 14 + 50

    def test_full_roce_size(self):
        # Eth(14)+IP(20)+UDP(8)+BTH(12)+RETH(16)+payload+iCRC(4)
        packet = roce_packet(payload_len=1024)
        assert packet.size == 14 + 20 + 8 + 12 + 16 + 1024 + 4

    def test_ack_packet_size(self):
        packet = Packet(
            ip=Ipv4Header(), udp=UdpHeader(),
            bth=BaseTransportHeader(opcode=Opcode.ACKNOWLEDGE),
            aeth=AckExtendedHeader.ack(),
        )
        assert packet.size == 14 + 20 + 8 + 12 + 4 + 4

    def test_header_len_excludes_payload_and_crc(self):
        packet = roce_packet(payload_len=500)
        assert packet.header_len == 14 + 20 + 8 + 12 + 16

    def test_pack_headers_matches_header_len(self):
        packet = roce_packet()
        assert len(packet.pack_headers()) == packet.header_len


class TestProperties:
    def test_is_roce(self):
        assert roce_packet().is_roce
        assert not Packet().is_roce

    def test_accessors(self):
        packet = roce_packet()
        assert packet.opcode == Opcode.RDMA_WRITE_ONLY
        assert packet.psn == 100
        assert packet.dest_qp == 0x1234

    def test_accessors_none_without_bth(self):
        packet = Packet()
        assert packet.opcode is None
        assert packet.psn is None


class TestCopy:
    def test_copy_is_deep(self):
        original = roce_packet()
        clone = original.copy()
        clone.ip.ttl = 3
        clone.bth.psn = 999
        assert original.ip.ttl != 3
        assert original.bth.psn == 100

    def test_copy_gets_fresh_packet_id(self):
        original = roce_packet()
        assert original.copy().packet_id != original.packet_id

    def test_copy_preserves_icrc_state(self):
        original = roce_packet()
        original.icrc_ok = False
        assert original.copy().icrc_ok is False


class TestIcrc:
    def test_icrc_stable_for_same_packet(self):
        assert roce_packet().icrc() == roce_packet().icrc()

    def test_corruption_changes_icrc(self):
        good = roce_packet()
        bad = roce_packet()
        bad.icrc_ok = False
        assert good.icrc() != bad.icrc()

    def test_icrc_depends_on_transport_headers(self):
        a = roce_packet()
        b = roce_packet()
        b.bth.psn = 101
        assert a.icrc() != b.icrc()

    def test_crc32_known_properties(self):
        assert crc32_ib(b"") == 0
        assert crc32_ib(b"abc") != crc32_ib(b"abd")

    def test_icrc_payload_length_matters(self):
        assert icrc_for(b"\x01\x02", 10) != icrc_for(b"\x01\x02", 11)


class TestMirrorMetadata:
    def test_metadata_accessors_read_rewritten_fields(self):
        packet = roce_packet()
        packet.ip.ttl = EventType.DROP
        packet.eth.src_mac = 12345        # mirror sequence
        packet.eth.dst_mac = 987654321    # timestamp
        assert packet.mirror_event_type == EventType.DROP
        assert packet.mirror_seq == 12345
        assert packet.mirror_timestamp_ns == 987654321

    def test_event_type_names(self):
        assert EventType.NAMES[EventType.NONE] == "none"
        assert EventType.NAMES[EventType.DROP] == "drop"
        assert EventType.NAMES[EventType.ECN] == "ecn"
        assert EventType.NAMES[EventType.CORRUPT] == "corrupt"

    def test_mirror_event_type_requires_ip(self):
        with pytest.raises(ValueError):
            Packet().mirror_event_type
