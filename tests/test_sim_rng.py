"""Unit tests for the seeded random source."""

from repro.sim.rng import SimRandom


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SimRandom(42)
        b = SimRandom(42)
        assert [a.randint(0, 1000) for _ in range(20)] == \
               [b.randint(0, 1000) for _ in range(20)]

    def test_different_seeds_differ(self):
        a = SimRandom(1)
        b = SimRandom(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != \
               [b.randint(0, 10**9) for _ in range(5)]

    def test_child_streams_are_independent(self):
        root = SimRandom(7)
        child_a = root.child("nic/a")
        # Consuming from one child must not perturb a sibling created later.
        burn = [child_a.random() for _ in range(100)]
        child_b = root.child("nic/b")
        fresh_b = [child_b.random() for _ in range(5)]
        replay = SimRandom(7).child("nic/b")
        again_b = [replay.random() for _ in range(5)]
        assert fresh_b == again_b
        assert burn  # silence lints

    def test_child_namespace_nests(self):
        root = SimRandom(7, "root")
        child = root.child("sub")
        assert child.namespace == "root/sub"


class TestRanges:
    def test_qpn_is_24_bit_nonzero(self):
        rng = SimRandom(3)
        for _ in range(200):
            qpn = rng.qpn()
            assert 0 < qpn < 0xFFFFFF

    def test_psn_is_24_bit(self):
        rng = SimRandom(3)
        for _ in range(200):
            assert 0 <= rng.psn() <= 0xFFFFFF

    def test_choice_and_sample(self):
        rng = SimRandom(5)
        items = list(range(10))
        assert rng.choice(items) in items
        picked = rng.sample(items, 3)
        assert len(picked) == 3
        assert all(p in items for p in picked)

    def test_shuffle_preserves_elements(self):
        rng = SimRandom(5)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestJitter:
    def test_jitter_within_fraction(self):
        rng = SimRandom(9)
        base = 10_000
        for _ in range(500):
            value = rng.jitter_ns(base, fraction=0.1)
            assert 9_000 <= value <= 11_000

    def test_zero_fraction_returns_base(self):
        rng = SimRandom(9)
        assert rng.jitter_ns(5000, fraction=0.0) == 5000

    def test_non_positive_base_clamped(self):
        rng = SimRandom(9)
        assert rng.jitter_ns(0) == 0
        assert rng.jitter_ns(-10) == 0

    def test_jitter_never_negative(self):
        rng = SimRandom(9)
        for _ in range(100):
            assert rng.jitter_ns(10, fraction=5.0) >= 0
