"""The Analyzer protocol, the registry and the legacy shims."""

import json

import pytest

from repro.core.analyzers import (
    Analyzer,
    AnalyzerContext,
    AnalyzerResult,
    Outcome,
    analyze_cnps,
    analyze_retransmissions,
    analyzer_names,
    check_counters,
    check_gbn_compliance,
    get_analyzer,
    iter_analyzers,
    register,
    trace_window,
)

from conftest import drop, run_scenario

BUILTINS = ("cnp", "counters", "gbn", "goodput", "latency",
            "retransmission")


def clean_result():
    return run_scenario(nic="cx5", verb="write", num_msgs=2,
                        message_size=4096, seed=3)


class TestRegistry:
    def test_builtins_registered_in_name_order(self):
        assert tuple(analyzer_names()) == BUILTINS
        assert [a.name for a in iter_analyzers()] == list(BUILTINS)

    def test_every_builtin_satisfies_the_protocol(self):
        for analyzer in iter_analyzers():
            assert isinstance(analyzer, Analyzer)

    def test_unknown_name_names_the_alternatives(self):
        with pytest.raises(KeyError, match="gbn"):
            get_analyzer("nonesuch")

    def test_register_validates_and_latest_wins(self):
        with pytest.raises(ValueError):
            register(object())

        class Probe:
            name = "gbn"

            def analyze(self, trace, ctx):
                raise NotImplementedError

        original = get_analyzer("gbn")
        try:
            register(Probe())
            assert isinstance(get_analyzer("gbn"), Probe)
        finally:
            register(original)
        assert get_analyzer("gbn") is original


class TestUniformVerdicts:
    def test_clean_run_passes_every_analyzer(self):
        result = clean_result()
        ctx = AnalyzerContext.for_result(result)
        for analyzer in iter_analyzers():
            verdict = analyzer.analyze(result.trace, ctx)
            assert isinstance(verdict, AnalyzerResult)
            assert verdict.name == analyzer.name
            assert verdict.outcome is Outcome.PASS and verdict.ok
            assert not verdict.violations
            assert str(verdict).startswith("[PASS]")

    def test_evidence_window_spans_the_trace(self):
        result = clean_result()
        verdict = get_analyzer("gbn").analyze(
            result.trace, AnalyzerContext.for_result(result))
        assert verdict.evidence_window == trace_window(result.trace)
        start, end = verdict.evidence_window
        assert 0 <= start <= end

    def test_counters_inconclusive_without_result_context(self):
        result = clean_result()
        verdict = get_analyzer("counters").analyze(result.trace,
                                                   AnalyzerContext())
        assert verdict.is_inconclusive
        assert verdict.outcome is Outcome.INCONCLUSIVE

    def test_drop_surfaces_in_retransmission_data(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=2,
                              message_size=4096, events=(drop(psn=2),),
                              seed=5)
        verdict = get_analyzer("retransmission").analyze(
            result.trace, AnalyzerContext.for_result(result))
        assert verdict.ok
        assert verdict.metrics["events"] == 1
        assert verdict.data[0].conclusive

    def test_to_dict_roundtrip_drops_data_only(self):
        result = clean_result()
        verdict = get_analyzer("goodput").analyze(
            result.trace, AnalyzerContext.for_result(result))
        restored = AnalyzerResult.from_dict(
            json.loads(json.dumps(verdict.to_dict())))
        assert restored.data is None
        assert restored == AnalyzerResult(
            name=verdict.name, outcome=verdict.outcome,
            violations=verdict.violations,
            evidence_window=verdict.evidence_window,
            metrics=verdict.metrics, detail=verdict.detail)


class TestLegacyShims:
    def test_legacy_entry_points_warn_but_still_work(self):
        result = clean_result()
        with pytest.warns(DeprecationWarning, match="gbn"):
            report = check_gbn_compliance(result.trace, mtu=1024)
        assert report.compliant
        with pytest.warns(DeprecationWarning, match="retransmission"):
            assert analyze_retransmissions(result.trace) == []
        with pytest.warns(DeprecationWarning, match="cnp"):
            assert analyze_cnps(result.trace).spurious_cnps == 0
        with pytest.warns(DeprecationWarning, match="counters"):
            assert check_counters(result).consistent

    def test_registry_path_matches_legacy_report(self):
        result = clean_result()
        verdict = get_analyzer("gbn").analyze(
            result.trace, AnalyzerContext.for_result(result))
        with pytest.warns(DeprecationWarning):
            legacy = check_gbn_compliance(result.trace, mtu=1024)
        assert verdict.data == legacy

    def test_suite_outcome_is_the_protocol_outcome(self):
        from repro.core import suite

        assert suite.Outcome is Outcome
