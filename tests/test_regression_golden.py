"""Golden regression tests: canonical scenarios must stay bit-identical.

The whole value of Lumina-style testing is *reproducibility*: the same
configuration must produce the same wire trace, every time, on every
machine. These tests pin a digest of the canonical scenarios' traces;
they fail on any unintended behavioural change (and on nondeterminism,
which they run twice to detect directly).

If a deliberate model change breaks a digest, re-derive it with:
    python -c "from tests.test_regression_golden import digest_of; ..."
and update the constant together with the change that justified it.
"""

import hashlib

from conftest import drop, ecn, run_scenario


def digest_of(result) -> str:
    """Stable digest over the wire-visible content of a trace."""
    hasher = hashlib.sha256()
    for pkt in result.trace:
        record = pkt.record
        hasher.update(record.eth.pack())
        hasher.update(record.ip.pack())
        hasher.update(record.udp.pack())
        hasher.update(record.bth.pack())
        if record.reth is not None:
            hasher.update(record.reth.pack())
        if record.aeth is not None:
            hasher.update(record.aeth.pack())
        hasher.update(pkt.timestamp_ns.to_bytes(8, "big"))
        hasher.update(pkt.iteration.to_bytes(2, "big"))
    return hasher.hexdigest()[:16]


def canonical(seed=1001):
    # Note the ECN mark sits *before* the drop: ITER is sticky per
    # connection, so an iter-1 entry behind the retransmission point
    # would never fire (see test_loss_emulation for that mechanism).
    return run_scenario(nic="cx5", verb="write", num_msgs=3,
                        message_size=10240,
                        events=(drop(psn=5), ecn(psn=3)), seed=seed)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        import dataclasses

        from repro.core.orchestrator import run_test

        first = canonical()
        config = dataclasses.replace(first.config)
        second = run_test(config)
        assert digest_of(first) == digest_of(second)

    def test_different_seed_different_trace(self):
        assert digest_of(canonical(seed=1001)) != digest_of(canonical(seed=1002))

    def test_counters_are_deterministic(self):
        import dataclasses

        from repro.core.orchestrator import run_test

        first = canonical()
        second = run_test(dataclasses.replace(first.config))
        assert first.requester_counters.canonical == \
            second.requester_counters.canonical
        assert first.responder_counters.canonical == \
            second.responder_counters.canonical

    def test_mct_values_are_deterministic(self):
        import dataclasses

        from repro.core.orchestrator import run_test

        first = canonical()
        second = run_test(dataclasses.replace(first.config))
        a = [m.completion_time_ns for m in first.traffic_log.all_messages]
        b = [m.completion_time_ns for m in second.traffic_log.all_messages]
        assert a == b


class TestGoldenShapes:
    """Structural invariants of the canonical trace (not exact digests,
    so unrelated additions — e.g. new counters — don't churn them)."""

    def test_canonical_trace_structure(self):
        result = canonical()
        # 3 msgs x 10 packets + 3 retransmitted (drop at psn 5 of msg 1,
        # go-back-N replays 5..10 = 6 packets) -- plus ACK/NAK traffic.
        data = result.trace.data_packets()
        drops = [p for p in data if p.was_dropped]
        marks = [p for p in data if p.was_ecn_marked]
        assert len(drops) == 1
        assert len(marks) == 1
        assert len(result.trace.naks()) == 1
        assert len(result.trace.cnps()) == 1
        seen = set()
        retransmitted = [p for p in data
                         if p.psn in seen or seen.add(p.psn)]
        assert len(retransmitted) == 6

    def test_canonical_counters(self):
        result = canonical()
        req = result.requester_counters
        resp = result.responder_counters
        assert req["packet_seq_err"] == 1
        assert req["retransmitted_packets"] == 6
        assert req["cnp_handled"] == 1
        assert resp["nak_sent"] == 1
        assert resp["cnp_sent"] == 1
        assert resp["rx_icrc_errors"] == 0
        assert req["local_ack_timeout_err"] == 0
