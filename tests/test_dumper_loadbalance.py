"""Integration tests for §3.4's dumping load-balancing claims.

The paper: naive dumping (flow-affine RSS onto few cores) occasionally
discards mirrored packets at line rate, invalidating tests; per-packet
load balancing + UDP port randomisation raises the complete-capture
success ratio from ~30% to ~100%.
"""

from repro.core.config import (
    DumperPoolConfig,
    HostConfig,
    SwitchConfig,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import run_test


def _run(randomize_port, num_servers, cores=8, ring_slots=64, seed=13):
    config = TestConfig(
        requester=HostConfig(nic_type="cx5", ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type="cx5", ip_list=("10.0.0.2/24",)),
        traffic=TrafficConfig(num_connections=1, rdma_verb="write",
                              num_msgs_per_qp=8, message_size=102400,
                              mtu=1024, barrier_sync=False, tx_depth=4),
        dumpers=DumperPoolConfig(num_servers=num_servers,
                                 cores_per_server=cores,
                                 ring_slots=ring_slots),
        switch=SwitchConfig(randomize_mirror_udp_port=randomize_port),
        seed=seed,
    )
    return run_test(config)


class TestLoadBalancing:
    def test_flow_affine_rss_overflows_one_core(self):
        # Naive design: one dumper per direction (here: one server sees
        # the whole data stream) and no port randomisation, so every
        # mirrored packet of the flow hashes to a single core whose ring
        # overflows at line rate.
        result = _run(randomize_port=False, num_servers=1)
        assert result.dumper_discards > 0

    def test_incomplete_capture_fails_integrity(self):
        result = _run(randomize_port=False, num_servers=1)
        assert not result.integrity.ok
        assert result.integrity.missing_seqs

    def test_port_randomisation_spreads_and_captures_all(self):
        # Same single server: randomised UDP ports fan the flow across
        # all its cores and the capture is complete.
        result = _run(randomize_port=True, num_servers=1)
        assert result.dumper_discards == 0
        assert result.integrity.ok

    def test_success_ratio_improves_across_seeds(self):
        # The paper's 30% -> ~100% success-ratio experiment, miniature:
        # run several seeds with and without the LB design.
        seeds = range(20, 26)
        naive = sum(_run(False, 1, seed=s).integrity.ok for s in seeds)
        balanced = sum(_run(True, 1, seed=s).integrity.ok for s in seeds)
        assert balanced == len(list(seeds))
        assert naive < balanced

    def test_pool_of_weak_servers_suffices(self):
        # §3.4: users may pool several modest hosts instead of matching
        # the NIC's line rate with two powerful ones.
        result = _run(randomize_port=True, num_servers=4, cores=3)
        assert result.integrity.ok

    def test_all_servers_share_the_load(self):
        result = _run(randomize_port=True, num_servers=3)
        assert result.integrity.ok
        per_server = {}
        for pkt in result.trace:
            per_server[pkt.record.server] = per_server.get(pkt.record.server, 0) + 1
        assert len(per_server) == 3
        counts = sorted(per_server.values())
        assert counts[0] > 0.5 * counts[-1]  # roughly even WRR split
