"""Tests for the content-addressed campaign store (repro.store)."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro import load_result, quick_config, save_result
from repro.core.results import AttemptRecord
from repro.core.suite import CheckResult, Outcome
from repro.store import CampaignStore
from repro.store.fingerprint import (
    canonical_json,
    canonicalize,
    config_fingerprint,
    fingerprint,
)
from repro.store.journal import CampaignJournal
from repro.store.serialize import (
    decode_check_result,
    decode_result,
    decode_score,
    encode_check_result,
    encode_result,
    encode_score,
)

from conftest import run_scenario


class TestFingerprint:
    def test_same_config_same_fingerprint(self):
        a = quick_config(nic="cx5", drop_psn=3, seed=4)
        b = quick_config(nic="cx5", drop_psn=3, seed=4)
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_seed_and_nic_change_fingerprint(self):
        base = quick_config(nic="cx5", seed=1)
        assert config_fingerprint(base) != \
            config_fingerprint(quick_config(nic="cx5", seed=2))
        assert config_fingerprint(base) != \
            config_fingerprint(quick_config(nic="cx4", seed=1))

    def test_kind_and_extra_partition_the_address_space(self):
        config = quick_config()
        assert config_fingerprint(config, kind="result") != \
            config_fingerprint(config, kind="score")
        assert config_fingerprint(config, kind="score") != \
            config_fingerprint(config, kind="score", extra={"w": 1})

    def test_dict_insertion_order_is_canonicalized_away(self):
        ab = {"a": 1, "b": [2, 3]}
        ba = {"b": [2, 3], "a": 1}
        assert canonical_json(ab) == canonical_json(ba)
        assert fingerprint("x", ab) == fingerprint("x", ba)

    def test_canonicalize_reduces_exotic_values(self):
        assert canonicalize({1: b"\x00\xff"}) == {"1": "00ff"}
        assert canonicalize({"s": {3, 1, 2}}) == {"s": [1, 2, 3]}
        assert canonicalize(Outcome.PASS) == "PASS"

    def test_fingerprint_stable_across_interpreter_restart(self):
        # Hash randomisation must not leak into the address: a fresh
        # interpreter (different PYTHONHASHSEED) computes the same one.
        config = quick_config(nic="e810", drop_psn=5, seed=9)
        script = (
            "from repro import quick_config\n"
            "from repro.store.fingerprint import config_fingerprint\n"
            "c = quick_config(nic='e810', drop_psn=5, seed=9)\n"
            "print(config_fingerprint(c))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="321",
                   PYTHONPATH=os.pathsep.join(sys.path))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == config_fingerprint(config)


class TestCampaignStore:
    def test_miss_then_hit(self, tmp_path):
        store = CampaignStore(str(tmp_path / "store"))
        fp = fingerprint("result", {"k": 1})
        assert store.get(fp) is None
        store.put(fp, "result", {"payload": 42})
        assert store.get(fp) == {"payload": 42}
        assert (store.hits, store.misses) == (1, 1)
        assert fp in store and len(store) == 1
        assert store.stats() == "store: 1 hit(s), 1 miss(es), 1 entry"

    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        CampaignStore(root).put("ab" + "0" * 62, "result", [1, 2])
        assert CampaignStore(root).get("ab" + "0" * 62) == [1, 2]

    def test_prune_evicts_oldest_first(self, tmp_path):
        store = CampaignStore(str(tmp_path / "store"))
        fps = [fingerprint("result", i) for i in range(5)]
        for i, fp in enumerate(fps):
            store.put(fp, "result", i)
        assert store.prune(max_entries=2) == 3
        assert list(store.fingerprints()) == fps[3:]

    def test_gc_rebuilds_lost_index_and_drops_orphans(self, tmp_path):
        root = str(tmp_path / "store")
        store = CampaignStore(root)
        fp = fingerprint("result", "x")
        store.put(fp, "result", {"v": 1})
        os.remove(os.path.join(root, "index.json"))
        reopened = CampaignStore(root)  # self-heals by rescanning objects
        assert reopened.get(fp) == {"v": 1}
        # Object file vanishing behind the index degrades to a miss.
        os.remove(os.path.join(root, "objects", fp[:2], fp + ".json"))
        assert reopened.get(fp) is None
        assert fp not in reopened

    def test_torn_index_is_rebuilt(self, tmp_path):
        root = str(tmp_path / "store")
        store = CampaignStore(root)
        fp = fingerprint("result", "y")
        store.put(fp, "result", 7)
        with open(os.path.join(root, "index.json"), "w") as handle:
            handle.write('{"next-seq": 1, "entr')  # kill mid-write
        assert CampaignStore(root).get(fp) == 7


class TestCampaignJournal:
    def test_append_load_roundtrip(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal.append({"type": "begin", "fingerprint": "f"})
        journal.append({"type": "generation", "generation": 1})
        assert [r["type"] for r in journal.load()] == ["begin", "generation"]
        assert journal.last("generation")["generation"] == 1

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.append({"type": "begin"})
        with open(path, "a") as handle:
            handle.write('{"type": "generat')  # kill mid-append
        assert [r["type"] for r in journal.load()] == ["begin"]
        assert journal.last("generation") is None


class TestResultRoundTrip:
    def test_testresult_roundtrips_through_json(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=2,
                              message_size=4096, seed=3)
        data = json.loads(json.dumps(encode_result(result)))
        assert decode_result(data) == result

    def test_roundtrip_preserves_retry_attempts(self):
        base = run_scenario(nic="cx5", num_msgs=1, message_size=1024)
        attempt = AttemptRecord(attempt=1, integrity=base.integrity,
                                trace_packets=len(base.trace),
                                dumper_discards=2, duration_ns=10_000,
                                backoff_ns=500)
        result = dataclasses.replace(base, attempts=[attempt])
        restored = decode_result(json.loads(json.dumps(encode_result(result))))
        assert restored == result
        assert restored.attempts == [attempt]

    def test_save_and_load_result_file(self, tmp_path):
        result = run_scenario(nic="cx5", num_msgs=1, message_size=1024)
        path = save_result(result, str(tmp_path / "result.json"))
        assert load_result(path) == result

    def test_score_roundtrip(self):
        from repro.core.fuzz.score import score_result

        score = score_result(run_scenario(nic="cx5", num_msgs=1,
                                          message_size=1024))
        assert decode_score(json.loads(json.dumps(encode_score(score)))) \
            == score

    @pytest.mark.parametrize("outcome", list(Outcome))
    def test_check_result_roundtrip_all_outcomes(self, outcome):
        check = CheckResult(name="gbn-compliance",
                            passed=outcome is Outcome.PASS,
                            detail="capture gap", outcome=outcome)
        restored = decode_check_result(
            json.loads(json.dumps(encode_check_result(check))))
        assert restored == check
        assert restored.outcome is outcome
