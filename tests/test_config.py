"""Unit tests for configuration schema and dict parsing (Listings 1-2)."""

import pytest

from repro.core.config import (
    ConfigError,
    DataPacketEvent,
    DumperPoolConfig,
    EtsConfig,
    EtsQueueSpec,
    HostConfig,
    PeriodicEcnIntent,
    RoceParameters,
    SwitchConfig,
    TestConfig,
    TrafficConfig,
)
from repro.rdma.verbs import Verb


class TestHostConfig:
    def test_defaults(self):
        host = HostConfig(nic_type="cx5")
        assert host.roce.dcqcn_np_enable

    def test_unknown_nic_rejected(self):
        with pytest.raises(ConfigError):
            HostConfig(nic_type="cx9")

    def test_empty_ip_list_rejected(self):
        with pytest.raises(ConfigError):
            HostConfig(nic_type="cx5", ip_list=())

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            HostConfig(nic_type="cx5", bandwidth_gbps=-1)

    def test_listing1_shape_parses(self):
        # Mirrors the paper's Listing 1 requester snippet.
        host = HostConfig.from_dict({
            "nic": {
                "type": "cx4",
                "if-name": "enp4s0",
                "switch-port": 144,
                "ip-list": ["10.0.0.2/24", "10.0.0.12/24"],
            },
            "roce-parameters": {
                "dcqcn-rp-enable": False,
                "dcqcn-np-enable": True,
                "min-time-between-cnps": 0,
                "adaptive-retrans": False,
                "slow-restart": True,
            },
        })
        assert host.nic_type == "cx4"
        assert len(host.ip_list) == 2
        assert host.roce.dcqcn_rp_enable is False
        assert host.roce.min_time_between_cnps_us == 0
        assert host.roce.slow_restart is True


class TestDataPacketEvent:
    def test_valid(self):
        event = DataPacketEvent(qpn=2, psn=5, type="drop", iter=2)
        assert event.iter == 2

    @pytest.mark.parametrize("kwargs", [
        dict(qpn=0, psn=1, type="drop"),
        dict(qpn=1, psn=0, type="drop"),
        dict(qpn=1, psn=1, type="drop", iter=-1),
        dict(qpn=1, psn=1, type="explode"),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DataPacketEvent(**kwargs)

    def test_from_dict_listing2_shape(self):
        event = DataPacketEvent.from_dict(
            {"qpn": 2, "psn": 5, "type": "drop", "iter": 2})
        assert (event.qpn, event.psn, event.type, event.iter) == (2, 5, "drop", 2)

    def test_from_dict_iter_defaults_to_one(self):
        assert DataPacketEvent.from_dict(
            {"qpn": 1, "psn": 4, "type": "ecn"}).iter == 1


class TestTrafficConfig:
    def test_defaults_match_listing2_spirit(self):
        traffic = TrafficConfig()
        assert traffic.mtu == 1024
        assert traffic.min_retransmit_timeout == 14
        assert traffic.max_retransmit_retry == 7

    def test_packets_per_message(self):
        traffic = TrafficConfig(message_size=10240, mtu=1024)
        assert traffic.packets_per_message == 10
        assert TrafficConfig(message_size=1, mtu=1024).packets_per_message == 1
        assert TrafficConfig(message_size=1025, mtu=1024).packets_per_message == 2

    def test_packets_per_connection(self):
        traffic = TrafficConfig(message_size=2048, mtu=1024, num_msgs_per_qp=5)
        assert traffic.packets_per_connection == 10

    def test_verb_combos(self):
        traffic = TrafficConfig(rdma_verb="send, read")
        assert traffic.verbs == [Verb.SEND, Verb.READ]

    def test_unknown_verb_rejected(self):
        with pytest.raises(ConfigError):
            TrafficConfig(rdma_verb="fetch")

    def test_event_beyond_stream_rejected(self):
        with pytest.raises(ConfigError):
            TrafficConfig(message_size=1024, num_msgs_per_qp=1,
                          data_pkt_events=(DataPacketEvent(1, 2, "drop"),))

    @pytest.mark.parametrize("field,value", [
        ("num_connections", 0),
        ("num_msgs_per_qp", 0),
        ("mtu", 128),
        ("mtu", 8192),
        ("message_size", 0),
        ("tx_depth", 0),
        ("min_retransmit_timeout", 32),
        ("max_retransmit_retry", 16),
    ])
    def test_invalid_fields(self, field, value):
        with pytest.raises(ConfigError):
            TrafficConfig(**{field: value})

    def test_with_events(self):
        traffic = TrafficConfig(message_size=4096)
        updated = traffic.with_events([DataPacketEvent(1, 2, "drop")])
        assert len(updated.data_pkt_events) == 1
        assert not traffic.data_pkt_events

    def test_from_dict_listing2(self):
        traffic = TrafficConfig.from_dict({
            "num-connections": 2,
            "rdma-verb": "write",
            "num-msgs-per-qp": 10,
            "mtu": 1024,
            "message-size": 10240,
            "multi-gid": True,
            "barrier-sync": True,
            "tx-depth": 1,
            "min-retransmit-timeout": 14,
            "max-retransmit-retry": 7,
            "data-pkt-events": [
                {"qpn": 1, "psn": 4, "type": "ecn", "iter": 1},
                {"qpn": 2, "psn": 5, "type": "drop", "iter": 1},
                {"qpn": 2, "psn": 5, "type": "drop", "iter": 2},
            ],
        })
        assert traffic.num_connections == 2
        assert traffic.multi_gid
        assert len(traffic.data_pkt_events) == 3
        assert traffic.data_pkt_events[2].iter == 2


class TestPeriodicIntents:
    def test_ecn_alias(self):
        intent = PeriodicEcnIntent(qpn=1, period=50)
        assert intent.start == 1
        assert intent.type == "ecn"

    def test_drop_alias(self):
        from repro.core.config import PeriodicDropIntent

        intent = PeriodicDropIntent(qpn=2, period=100)
        assert intent.type == "drop"

    def test_invalid_period(self):
        with pytest.raises(ConfigError):
            PeriodicEcnIntent(qpn=1, period=0)

    def test_invalid_type(self):
        from repro.core.config import PeriodicIntent

        with pytest.raises(ConfigError):
            PeriodicIntent(qpn=1, period=10, type="delay")

    def test_from_dict(self):
        from repro.core.config import PeriodicIntent

        intent = PeriodicIntent.from_dict(
            {"qpn": 1, "period": 50, "start": 3, "type": "drop"})
        assert intent.start == 3
        assert intent.type == "drop"


class TestTestConfig:
    def test_from_dict_full(self):
        config = TestConfig.from_dict({
            "requester": {"nic": {"type": "cx5", "ip-list": ["10.0.0.1/24"]}},
            "responder": {"nic": {"type": "e810", "ip-list": ["10.0.0.2/24"]}},
            "traffic": {"num-connections": 4},
            "dumpers": {"num-servers": 3},
            "switch": {"mirroring": False},
            "seed": 9,
        })
        assert config.requester.nic_type == "cx5"
        assert config.responder.nic_type == "e810"
        assert config.traffic.num_connections == 4
        assert config.dumpers.num_servers == 3
        assert config.switch.mirroring is False
        assert config.seed == 9

    def test_dumper_pool_validation(self):
        with pytest.raises(ConfigError):
            DumperPoolConfig(num_servers=-1)

    def test_switch_defaults(self):
        switch = SwitchConfig()
        assert switch.event_injection and switch.mirroring
        assert switch.randomize_mirror_udp_port

    def test_ets_config_container(self):
        ets = EtsConfig(queues=(EtsQueueSpec(0, 50.0), EtsQueueSpec(1, 50.0)),
                        qp_to_queue={1: 0, 2: 1})
        traffic = TrafficConfig(ets=ets)
        assert traffic.ets.qp_to_queue[2] == 1
