"""Campaign service tests: job specs, queue, dispatcher, daemon, API.

The job-lifecycle battery ISSUE 10 asks for: priority ordering with a
deterministic FIFO tie-break, cancel of queued vs running jobs, daemon
crash-resume from the queue journal, store replay spawning zero
workers on resubmission, and byte-identity between service execution
and the one-shot code path. Dispatcher tests run against stub
executors (instant, no subprocess); one daemon test drives the full
HTTP stack on an ephemeral loopback port with the inline executor.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import quick_config
from repro.service import (
    CampaignDaemon,
    Client,
    JobQueue,
    JobSpec,
    JobState,
    ServiceError,
    decode_jobspec,
    encode_jobspec,
    execute_jobspec,
)
from repro.service.dispatcher import (
    Dispatcher,
    InlineJobExecutor,
    JobCancelled,
)
from repro.service.jobs import (
    read_result_document,
    result_document,
    write_result_document,
)
from repro.store.serialize import (
    DOCUMENT_SCHEMA_VERSION,
    unwrap_document,
    wrap_document,
)

SUITE_PAYLOAD = {"nic": "cx5", "seed": None, "checks": ["gbn-logic"],
                 "faults": None}


def suite_spec(**opts) -> JobSpec:
    return JobSpec.for_suite("cx5", checks=["gbn-logic"], **opts)


# ---------------------------------------------------------------------------
# Versioned documents
# ---------------------------------------------------------------------------

class TestDocumentEnvelope:
    def test_wrap_unwrap_round_trip(self):
        doc = wrap_document("job-spec", {"a": 1})
        assert doc["schema-version"] == DOCUMENT_SCHEMA_VERSION
        version, body = unwrap_document(doc, kind="job-spec")
        assert version == DOCUMENT_SCHEMA_VERSION
        assert body == {"a": 1}

    def test_legacy_document_warns(self):
        with pytest.warns(DeprecationWarning):
            version, body = unwrap_document({"a": 1})
        assert version == 0
        assert body == {"a": 1}

    def test_future_version_rejected(self):
        doc = {"schema-version": DOCUMENT_SCHEMA_VERSION + 1,
               "kind": "job-spec", "body": {}}
        with pytest.raises(ValueError):
            unwrap_document(doc)

    def test_kind_mismatch_rejected(self):
        doc = wrap_document("job-result", {})
        with pytest.raises(ValueError):
            unwrap_document(doc, kind="job-spec")


# ---------------------------------------------------------------------------
# Job specs
# ---------------------------------------------------------------------------

class TestJobSpec:
    def test_encode_decode_round_trip(self):
        spec = suite_spec(priority=3, workers=2, timeout_s=9.0)
        assert decode_jobspec(encode_jobspec(spec)) == spec

    def test_legacy_spec_decodes_with_warning(self):
        spec = suite_spec()
        with pytest.warns(DeprecationWarning):
            legacy = decode_jobspec({"job-kind": "suite",
                                     "payload": SUITE_PAYLOAD})
        assert legacy.fingerprint == spec.fingerprint

    def test_fingerprint_ignores_execution_knobs(self):
        base = suite_spec()
        tuned = suite_spec(priority=9, workers=4, timeout_s=60.0)
        assert base.fingerprint == tuned.fingerprint

    def test_fingerprint_covers_payload(self):
        assert (suite_spec().fingerprint
                != JobSpec.for_suite("cx4",
                                     checks=["gbn-logic"]).fingerprint)
        assert (suite_spec().fingerprint
                != suite_spec(coverage=True).fingerprint)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec("deploy", {})

    def test_unknown_payload_key_rejected(self):
        with pytest.raises(ValueError, match="payload keys"):
            JobSpec("suite", {"nic": "cx5", "sede": 1})

    def test_fuzz_needs_config_or_target(self):
        with pytest.raises(ValueError, match="config or a target"):
            JobSpec.for_fuzz()

    def test_config_accepts_dataclass_and_dict(self):
        config = quick_config(seed=5)
        assert (JobSpec.for_run(config).fingerprint
                == JobSpec.for_run(config.to_dict()).fingerprint)


# ---------------------------------------------------------------------------
# Queue
# ---------------------------------------------------------------------------

class TestJobQueue:
    def test_priority_ordering_with_fifo_tie_break(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        low_first = queue.submit(suite_spec(priority=0))
        high_first = queue.submit(suite_spec(priority=5))
        high_second = queue.submit(suite_spec(priority=5))
        low_second = queue.submit(suite_spec(priority=0))
        order = [queue.claim_next().id for _ in range(4)]
        assert order == [high_first.id, high_second.id,
                         low_first.id, low_second.id]

    def test_cancel_queued_is_terminal(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(suite_spec())
        assert queue.cancel(job.id) == "cancelled"
        assert queue.get(job.id).state is JobState.CANCELLED
        assert queue.claim_next() is None

    def test_cancel_running_signals_event(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(suite_spec())
        claimed = queue.claim_next()
        assert queue.cancel(job.id) == "cancelling"
        assert claimed.cancel_event.is_set()
        assert claimed.state is JobState.RUNNING  # dispatcher finishes it

    def test_cancel_finished_is_noop(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(suite_spec())
        queue.claim_next()
        queue.finish(job.id, JobState.DONE, exit_code=0)
        assert queue.cancel(job.id) == "finished"

    def test_journal_crash_resume(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        done = queue.submit(suite_spec(priority=1))
        queued = queue.submit(suite_spec(priority=0))
        running = queue.submit(suite_spec(priority=2))
        assert queue.claim_next().id == running.id
        assert queue.claim_next().id == done.id
        queue.finish(done.id, JobState.DONE, exit_code=0)
        del queue  # "crash": only queue.jsonl survives

        revived = JobQueue(str(tmp_path))
        assert revived.get(done.id).state is JobState.DONE
        assert revived.get(done.id).exit_code == 0
        # the job that was mid-flight is re-dispatchable, ahead of the
        # lower-priority one that never started
        assert revived.get(running.id).state is JobState.QUEUED
        assert revived.claim_next().id == running.id
        assert revived.claim_next().id == queued.id
        # ids keep allocating after the resume
        assert revived.submit(suite_spec()).seq == 3

    def test_torn_journal_tail_tolerated(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(suite_spec())
        with open(tmp_path / "queue.jsonl", "a") as handle:
            handle.write('{"type": "state", "id": "job-0000')
        revived = JobQueue(str(tmp_path))
        assert revived.get(job.id).state is JobState.QUEUED


# ---------------------------------------------------------------------------
# Dispatcher (stub executors — no processes, no simulation)
# ---------------------------------------------------------------------------

class StubExecutor:
    """Instantly succeeds, recording every executed job id."""

    def __init__(self):
        self.executed = []

    def execute(self, job, job_dir, store_root, campaign_dir=None):
        self.executed.append(job.id)
        doc = result_document(job.spec, _stub_outcome(job.spec))
        write_result_document(doc, job_dir)
        return doc


class BlockingExecutor(StubExecutor):
    """Parks until cancelled; lets tests catch a job mid-run."""

    def __init__(self):
        super().__init__()
        self.started = threading.Event()

    def execute(self, job, job_dir, store_root, campaign_dir=None):
        self.started.set()
        job.cancel_event.wait(timeout=30.0)
        raise JobCancelled(job.id)


class ExplodingExecutor(StubExecutor):
    def execute(self, job, job_dir, store_root, campaign_dir=None):
        raise RuntimeError("boom")


def _stub_outcome(spec):
    from repro.service.jobs import JobOutcome

    return JobOutcome(kind=spec.kind, report="stub-report\n", exit_code=0)


def _dispatcher(tmp_path, executor, store=True):
    queue = JobQueue(str(tmp_path))
    dispatcher = Dispatcher(
        queue, str(tmp_path / "jobs"),
        store_root=str(tmp_path / "store") if store else None,
        executor=executor, claim_timeout_s=0.02)
    return queue, dispatcher


class TestDispatcher:
    def test_executes_and_persists_result(self, tmp_path):
        executor = StubExecutor()
        queue, dispatcher = _dispatcher(tmp_path, executor)
        dispatcher.start()
        try:
            job = queue.submit(suite_spec())
            assert dispatcher.wait_idle(timeout_s=10.0)
        finally:
            dispatcher.stop()
        assert queue.get(job.id).state is JobState.DONE
        assert queue.get(job.id).exit_code == 0
        doc = read_result_document(dispatcher.job_dir(job.id))
        assert unwrap_document(doc, kind="job-result")[1]["report"] \
            == "stub-report\n"

    def test_store_replay_spawns_zero_workers(self, tmp_path):
        executor = StubExecutor()
        queue, dispatcher = _dispatcher(tmp_path, executor)
        dispatcher.start()
        try:
            first = queue.submit(suite_spec())
            second = queue.submit(suite_spec(priority=7))  # same payload
            assert dispatcher.wait_idle(timeout_s=10.0)
        finally:
            dispatcher.stop()
        # the priority-7 duplicate dispatches first and executes; the
        # earlier submission then replays — exactly one execution total
        assert executor.executed == [second.id]
        assert queue.get(first.id).replayed
        assert queue.get(first.id).exit_code == 0
        assert (read_result_document(dispatcher.job_dir(second.id))
                == read_result_document(dispatcher.job_dir(first.id)))
        assert dispatcher.counters["replayed"] == 1

    def test_cancel_running_job(self, tmp_path):
        executor = BlockingExecutor()
        queue, dispatcher = _dispatcher(tmp_path, executor)
        dispatcher.start()
        try:
            job = queue.submit(suite_spec())
            assert executor.started.wait(timeout=10.0)
            assert queue.cancel(job.id) == "cancelling"
            assert dispatcher.wait_idle(timeout_s=10.0)
        finally:
            dispatcher.stop()
        assert queue.get(job.id).state is JobState.CANCELLED
        assert dispatcher.counters["cancelled"] == 1

    def test_executor_failure_is_contained(self, tmp_path):
        queue, dispatcher = _dispatcher(tmp_path, ExplodingExecutor())
        dispatcher.start()
        try:
            failed = queue.submit(suite_spec())
            assert dispatcher.wait_idle(timeout_s=10.0)
        finally:
            dispatcher.stop()
        assert queue.get(failed.id).state is JobState.FAILED
        assert "boom" in queue.get(failed.id).error


# ---------------------------------------------------------------------------
# Execution semantics (the single shared code path)
# ---------------------------------------------------------------------------

class TestExecuteJobspec:
    def test_suite_report_matches_direct_call(self):
        from repro.core.suite import run_conformance_suite

        outcome = execute_jobspec(suite_spec())
        card = run_conformance_suite("cx5", checks=["gbn-logic"])
        assert outcome.report == card.render()
        assert outcome.exit_code == 0
        assert outcome.value.nic == "cx5"

    def test_run_report_matches_direct_call(self):
        from repro.core.orchestrator import run_test
        from repro.core.report import render_report

        config = quick_config(num_msgs=2, seed=11)
        outcome = execute_jobspec(JobSpec.for_run(config))
        assert outcome.report == render_report(run_test(config))
        assert outcome.exit_code == 0

    def test_api_shims_build_the_same_jobspec_path(self):
        from repro import api

        card = api.run_suite("cx5", checks=["gbn-logic"])
        assert card.all_passed
        result = api.run_test(quick_config(num_msgs=2, seed=11))
        assert result.ok
        report = api.run_fuzz_campaign(quick_config(num_msgs=2, seed=11),
                                       iterations=2, batch_size=2)
        assert report.iterations_run == 2

    def test_facade_exports_service_names(self):
        import repro

        assert repro.JobSpec is JobSpec
        assert repro.Client is Client


# ---------------------------------------------------------------------------
# Daemon + HTTP + Client (inline executor, loopback port)
# ---------------------------------------------------------------------------

@pytest.fixture
def daemon(tmp_path):
    with CampaignDaemon(str(tmp_path / "state"),
                        executor=InlineJobExecutor()) as instance:
        yield instance


class TestDaemonHTTP:
    def test_submit_wait_results_replay(self, daemon):
        client = Client(daemon.url)
        job = client.submit(suite_spec())
        final = client.wait(job["id"], timeout_s=60.0)
        assert final["state"] == "done"
        assert final["exit-code"] == 0
        first_bytes = client.results_bytes(job["id"])
        body = client.results(job["id"])
        assert body["report"] == execute_jobspec(suite_spec()).report

        resubmitted = client.submit(suite_spec())
        refinal = client.wait(resubmitted["id"], timeout_s=60.0)
        assert refinal["replayed"]
        assert client.results_bytes(resubmitted["id"]) == first_bytes

    def test_status_listing_and_health(self, daemon):
        client = Client(daemon.url)
        job = client.submit(suite_spec())
        client.wait(job["id"], timeout_s=60.0)
        assert [row["id"] for row in client.jobs()] == [job["id"]]
        health = client.health()
        assert health["jobs"]["done"] == 1
        assert health["store-entries"] >= 1

    def test_progress_of_queued_job(self, daemon):
        client = Client(daemon.url)
        job = client.submit(suite_spec())
        progress = client.progress(job["id"])
        assert progress["id"] == job["id"]
        assert progress["state"] in ("queued", "running", "done")

    def test_cancel_queued_job_over_http(self, tmp_path):
        # no dispatcher: submissions stay queued forever
        daemon = CampaignDaemon(str(tmp_path / "state"),
                                executor=InlineJobExecutor())
        daemon.start()
        daemon.dispatcher.stop()
        try:
            client = Client(daemon.url)
            job = client.submit(suite_spec())
            assert client.cancel(job["id"]) == "cancelled"
            assert client.status(job["id"])["state"] == "cancelled"
        finally:
            daemon.stop()

    def test_unknown_routes_and_jobs_are_404(self, daemon):
        client = Client(daemon.url)
        with pytest.raises(ServiceError) as exc:
            client.status("job-999999")
        assert exc.value.status == 404
        with pytest.raises(ServiceError):
            client.cancel("job-999999")
        with pytest.raises(ServiceError):
            client._request("GET", "/api/v2/jobs")

    def test_malformed_submission_is_400(self, daemon):
        client = Client(daemon.url)
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/api/v1/jobs",
                            body=wrap_document("job-spec",
                                               {"payload": {}}))
        assert exc.value.status == 400

    def test_results_before_completion_is_404(self, tmp_path):
        daemon = CampaignDaemon(str(tmp_path / "state"),
                                executor=InlineJobExecutor())
        daemon.start()
        daemon.dispatcher.stop()
        try:
            client = Client(daemon.url)
            job = client.submit(suite_spec())
            with pytest.raises(ServiceError) as exc:
                client.results_bytes(job["id"])
            assert exc.value.status == 404
        finally:
            daemon.stop()

    def test_daemon_restart_resumes_queue(self, tmp_path):
        state = str(tmp_path / "state")
        with CampaignDaemon(state, executor=InlineJobExecutor()) as first:
            client = Client(first.url)
            job = client.submit(suite_spec())
            client.wait(job["id"], timeout_s=60.0)
        with CampaignDaemon(state, executor=InlineJobExecutor()) as second:
            revived = Client(second.url)
            assert revived.status(job["id"])["state"] == "done"
            again = revived.submit(suite_spec())
            final = revived.wait(again["id"], timeout_s=60.0)
            assert final["replayed"]  # the store survived the restart


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestServiceCLI:
    def test_server_flag_matches_local_output(self, daemon, tmp_path,
                                              capsys):
        from repro.__main__ import main

        local_out = tmp_path / "local.txt"
        remote_out = tmp_path / "remote.txt"
        assert main(["suite", "cx5", "--checks", "gbn-logic",
                     "-o", str(local_out)]) == 0
        capsys.readouterr()
        assert main(["suite", "cx5", "--checks", "gbn-logic",
                     "--server", daemon.url,
                     "-o", str(remote_out)]) == 0
        printed = capsys.readouterr().out
        assert "submitted job-" in printed
        assert local_out.read_bytes() == remote_out.read_bytes()

    def test_server_rejects_campaign_flag(self, daemon, capsys):
        from repro.__main__ import main

        status = main(["suite", "cx5", "--checks", "gbn-logic",
                       "--server", daemon.url, "--campaign", "/tmp/x"])
        assert status == 2

    def test_results_subcommand_emits_report(self, daemon, tmp_path,
                                             capsys):
        from repro.__main__ import main

        client = Client(daemon.url)
        job = client.submit(suite_spec())
        client.wait(job["id"], timeout_s=60.0)
        capsys.readouterr()
        out_file = tmp_path / "fetched.txt"
        assert main(["results", job["id"], "--server", daemon.url,
                     "-o", str(out_file)]) == 0
        assert out_file.read_text() == execute_jobspec(suite_spec()).report

    def test_submit_subcommand_round_trips_spec_file(self, daemon,
                                                     tmp_path, capsys):
        from repro.__main__ import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(encode_jobspec(suite_spec())))
        assert main(["submit", str(spec_file), "--server", daemon.url,
                     "--wait"]) == 0
        assert "done" in capsys.readouterr().out

    def test_service_commands_require_server(self, capsys):
        from repro.__main__ import main

        assert main(["status"]) == 2
        assert "needs --server" in capsys.readouterr().err
