"""Tests for the RC receiver-not-ready (RNR NAK) path."""

import pytest

from repro import quick_config
from repro.core.testbed import build_testbed
from repro.net.headers import AckExtendedHeader, AethSyndrome
from repro.rdma.qp import QpState
from repro.rdma.verbs import CompletionQueue, Verb, WcStatus, WorkRequest


def pair(seed=3, rnr_timer_ns=10_000):
    testbed = build_testbed(quick_config(nic="cx5", seed=seed))
    req_cq, resp_cq = CompletionQueue(), CompletionQueue()
    req = testbed.requester.nic.create_qp(req_cq, testbed.requester.ips[0])
    resp = testbed.responder.nic.create_qp(resp_cq, testbed.responder.ips[0])
    req.connect(testbed.responder.ips[0], resp.qp_num, resp.initial_psn)
    resp.connect(testbed.requester.ips[0], req.qp_num, req.initial_psn)
    req.rnr_timer_ns = rnr_timer_ns
    return testbed, req, resp, req_cq


class TestAethRnr:
    def test_rnr_nak_header(self):
        aeth = AckExtendedHeader.rnr_nak(timer_code=5, msn=2)
        assert aeth.is_rnr
        assert not aeth.is_ack and not aeth.is_nak
        kind, code = AethSyndrome.decode(aeth.syndrome)
        assert kind == AethSyndrome.RNR_NAK
        assert code == 5


class TestRnrFlow:
    def test_send_without_recv_triggers_rnr(self):
        testbed, req, resp, cq = pair()
        resp.auto_recv = False
        req.post_send(WorkRequest(verb=Verb.SEND, length=2048))
        testbed.sim.run_for(30_000)
        assert testbed.responder.nic.counters["rnr_nak_sent"] >= 1
        assert testbed.requester.nic.counters["rnr_nak_received"] >= 1
        assert not cq.poll()  # not complete yet

    def test_posting_recv_unblocks(self):
        testbed, req, resp, cq = pair()
        resp.auto_recv = False
        req.post_send(WorkRequest(verb=Verb.SEND, length=2048))
        testbed.sim.run_for(25_000)
        resp.post_recv(1)
        testbed.sim.run()
        completions = cq.poll()
        assert len(completions) == 1
        assert completions[0].status is WcStatus.SUCCESS

    def test_rnr_backoff_paces_retries(self):
        # With a 10 µs RNR timer, ~30 µs produces only a few attempts,
        # not a retransmission storm.
        testbed, req, resp, _ = pair(rnr_timer_ns=10_000)
        resp.auto_recv = False
        req.post_send(WorkRequest(verb=Verb.SEND, length=1024))
        testbed.sim.run_for(35_000)
        assert 2 <= testbed.responder.nic.counters["rnr_nak_sent"] <= 5

    def test_rnr_retry_exhaustion_errors_qp(self):
        testbed, req, resp, cq = pair(rnr_timer_ns=5_000)
        resp.auto_recv = False
        req.rnr_retry_limit = 3
        req.post_send(WorkRequest(verb=Verb.SEND, length=1024))
        testbed.sim.run_for(2_000_000)
        assert req.state is QpState.ERROR
        completions = cq.poll()
        assert completions and completions[0].status is WcStatus.RETRY_EXC_ERR

    def test_recv_wqes_consumed_per_message(self):
        testbed, req, resp, cq = pair()
        resp.auto_recv = False
        resp.post_recv(2)
        for _ in range(2):
            req.post_send(WorkRequest(verb=Verb.SEND, length=2048))
        testbed.sim.run()
        assert len(cq.poll()) == 2
        assert resp.recv_wqes_available == 0

    def test_writes_do_not_consume_recv_wqes(self):
        testbed, req, resp, cq = pair()
        resp.auto_recv = False  # no recvs posted at all
        req.post_send(WorkRequest(verb=Verb.WRITE, length=2048))
        testbed.sim.run()
        assert cq.poll()[0].status is WcStatus.SUCCESS
        assert testbed.responder.nic.counters["rnr_nak_sent"] == 0

    def test_post_recv_validation(self):
        _, _, resp, _ = pair()
        with pytest.raises(ValueError):
            resp.post_recv(0)

    def test_auto_recv_default_never_rnrs(self):
        testbed, req, resp, cq = pair()
        req.post_send(WorkRequest(verb=Verb.SEND, length=2048))
        testbed.sim.run()
        assert cq.poll()[0].status is WcStatus.SUCCESS
        assert testbed.responder.nic.counters["rnr_nak_sent"] == 0
