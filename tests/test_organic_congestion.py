"""Tests for organic (queue-based) ECN marking at the switch.

An extension over the paper's injected-only marks: with a RED-style
threshold on the egress queue, a bandwidth mismatch (100 G sender,
40 G receiver) produces genuine congestion marks and a closed DCQCN
loop — marks → CNPs → rate cut → queue drains → marks stop.
"""

import pytest

from repro.core.config import (
    DumperPoolConfig,
    HostConfig,
    SwitchConfig,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import run_test


def mismatch_run(ecn_threshold_kb, msgs=20, seed=44, rp_enable=True):
    from repro.core.config import RoceParameters

    traffic = TrafficConfig(num_connections=1, rdma_verb="write",
                            num_msgs_per_qp=msgs, message_size=256 * 1024,
                            mtu=1024, barrier_sync=False, tx_depth=4)
    roce = RoceParameters(dcqcn_rp_enable=rp_enable)
    return run_test(TestConfig(
        requester=HostConfig(nic_type="cx6", ip_list=("10.0.0.1/24",),
                             roce=roce),
        responder=HostConfig(nic_type="cx6", ip_list=("10.0.0.2/24",),
                             bandwidth_gbps=40, roce=roce),
        traffic=traffic, seed=seed,
        dumpers=DumperPoolConfig(num_servers=3),
        switch=SwitchConfig(ecn_threshold_kb=ecn_threshold_kb),
    ))


class TestOrganicMarking:
    def test_no_threshold_no_marks(self):
        result = mismatch_run(None)
        assert result.switch_counters["ecn_marked_by_queue"] == 0
        assert len(result.trace.cnps()) == 0
        # The unbounded egress queue absorbs the mismatch: goodput is
        # the 40 Gbps bottleneck.
        assert result.traffic_log.total_goodput_bps() > 30e9

    def test_queue_buildup_produces_marks_and_cnps(self):
        result = mismatch_run(100)
        marks = result.switch_counters["ecn_marked_by_queue"]
        assert marks > 0
        assert len(result.trace.cnps()) > 0
        assert result.responder_counters["ecn_marked_packets"] == marks

    def test_dcqcn_loop_closes(self):
        # Marks stop once the sender has been throttled below the
        # bottleneck: only the initial overshoot gets marked.
        result = mismatch_run(100)
        total_data = len(result.trace.data_packets())
        marks = result.switch_counters["ecn_marked_by_queue"]
        assert marks < total_data / 3
        assert all(m.ok for m in result.traffic_log.all_messages)
        assert result.integrity.ok

    def test_rate_actually_reduced(self):
        marked = mismatch_run(100)
        unmarked = mismatch_run(None)
        assert marked.traffic_log.total_goodput_bps() < \
            0.7 * unmarked.traffic_log.total_goodput_bps()

    def test_rp_disabled_keeps_marking_forever(self):
        # Without the reaction point the queue never drains below the
        # threshold, so marks keep accumulating.
        reacting = mismatch_run(100)
        ignoring = mismatch_run(100, rp_enable=False)
        assert ignoring.switch_counters["ecn_marked_by_queue"] > \
            2 * reacting.switch_counters["ecn_marked_by_queue"]

    def test_symmetric_links_never_mark(self):
        traffic = TrafficConfig(num_connections=1, rdma_verb="write",
                                num_msgs_per_qp=10, message_size=256 * 1024,
                                mtu=1024, barrier_sync=False, tx_depth=4)
        result = run_test(TestConfig(
            requester=HostConfig(nic_type="cx6", ip_list=("10.0.0.1/24",)),
            responder=HostConfig(nic_type="cx6", ip_list=("10.0.0.2/24",)),
            traffic=traffic, seed=44,
            dumpers=DumperPoolConfig(num_servers=3),
            switch=SwitchConfig(ecn_threshold_kb=100),
        ))
        assert result.switch_counters["ecn_marked_by_queue"] == 0

    def test_config_roundtrip(self):
        config = TestConfig.from_dict({
            "requester": {"nic": {"type": "cx6", "ip-list": ["10.0.0.1/24"]}},
            "responder": {"nic": {"type": "cx6", "ip-list": ["10.0.0.2/24"]}},
            "switch": {"ecn-threshold-kb": 150},
        })
        assert config.switch.ecn_threshold_kb == 150
