"""Unit tests for the ETS scheduler, including the CX6 Dx bug mode."""

import pytest

from repro.rdma.ets import EtsQueueConfig, EtsScheduler


class StubQp:
    """Minimal QP stand-in: a byte backlog with optional pacing."""

    def __init__(self, backlog=0, ready_at=0):
        self.backlog = backlog
        self.ready_at = ready_at
        self.ets_queue_index = 0

    def has_pending_tx(self):
        return self.backlog > 0

    @property
    def pacing_ready_at(self):
        return self.ready_at

    def take(self):
        self.backlog -= 1


LINE = 100_000_000_000


class TestConfiguration:
    def test_default_single_queue(self):
        sched = EtsScheduler(LINE)
        qp = StubQp(backlog=1)
        sched.assign(qp, 0)
        picked, _ = sched.select(0)
        assert picked is qp

    def test_weights_must_not_exceed_one(self):
        sched = EtsScheduler(LINE)
        with pytest.raises(ValueError):
            sched.configure([EtsQueueConfig(0, 0.7), EtsQueueConfig(1, 0.7)])

    def test_duplicate_indices_rejected(self):
        sched = EtsScheduler(LINE)
        with pytest.raises(ValueError):
            sched.configure([EtsQueueConfig(0, 0.5), EtsQueueConfig(0, 0.5)])

    def test_empty_configuration_rejected(self):
        sched = EtsScheduler(LINE)
        with pytest.raises(ValueError):
            sched.configure([])

    def test_strict_priority_takes_no_weight(self):
        with pytest.raises(ValueError):
            EtsQueueConfig(0, weight=0.5, strict_priority=True)

    def test_weight_range_validated(self):
        with pytest.raises(ValueError):
            EtsQueueConfig(0, weight=0.0)
        with pytest.raises(ValueError):
            EtsQueueConfig(0, weight=1.5)

    def test_assign_to_unknown_queue(self):
        sched = EtsScheduler(LINE)
        with pytest.raises(KeyError):
            sched.assign(StubQp(), 5)

    def test_invalid_line_rate(self):
        with pytest.raises(ValueError):
            EtsScheduler(0)

    def test_reassignment_moves_qp(self):
        sched = EtsScheduler(LINE)
        sched.configure([EtsQueueConfig(0, 0.5), EtsQueueConfig(1, 0.5)])
        qp = StubQp(backlog=1)
        sched.assign(qp, 0)
        sched.assign(qp, 1)
        assert qp.ets_queue_index == 1
        picked, _ = sched.select(0)
        assert picked is qp  # still schedulable from its new queue


class TestSelection:
    def test_empty_scheduler_returns_nothing(self):
        sched = EtsScheduler(LINE)
        assert sched.select(0) == (None, None)

    def test_pacing_blocks_until_ready(self):
        sched = EtsScheduler(LINE)
        qp = StubQp(backlog=1, ready_at=500)
        sched.assign(qp, 0)
        picked, next_time = sched.select(0)
        assert picked is None
        assert next_time == 500
        picked, _ = sched.select(500)
        assert picked is qp

    def test_round_robin_among_qps_in_one_queue(self):
        sched = EtsScheduler(LINE)
        a, b = StubQp(backlog=10), StubQp(backlog=10)
        sched.assign(a, 0)
        sched.assign(b, 0)
        order = []
        for _ in range(4):
            picked, _ = sched.select(0)
            order.append(picked)
        assert order == [a, b, a, b]

    def test_blocked_qp_skipped_in_round_robin(self):
        sched = EtsScheduler(LINE)
        a = StubQp(backlog=1, ready_at=10_000)
        b = StubQp(backlog=1, ready_at=0)
        sched.assign(a, 0)
        sched.assign(b, 0)
        picked, _ = sched.select(0)
        assert picked is b

    def test_strict_priority_preempts_weighted(self):
        sched = EtsScheduler(LINE)
        sched.configure([
            EtsQueueConfig(0, strict_priority=True),
            EtsQueueConfig(1, weight=1.0),
        ])
        high, low = StubQp(backlog=1), StubQp(backlog=1)
        sched.assign(high, 0)
        sched.assign(low, 1)
        picked, _ = sched.select(0)
        assert picked is high


class TestWeightedFairness:
    def _run_rounds(self, sched, qps, rounds, size=1024):
        sent = {id(qp): 0 for qp in qps}
        now = 0
        for _ in range(rounds):
            picked, next_time = sched.select(now)
            if picked is None:
                if next_time is None:
                    break
                now = next_time
                continue
            sent[id(picked)] += 1
            sched.account(picked, now, size)
            now += size * 8 * 1_000_000_000 // LINE
        return sent, now

    def test_equal_weights_share_equally(self):
        sched = EtsScheduler(LINE)
        sched.configure([EtsQueueConfig(0, 0.5), EtsQueueConfig(1, 0.5)])
        a, b = StubQp(backlog=10**9), StubQp(backlog=10**9)
        sched.assign(a, 0)
        sched.assign(b, 1)
        sent, _ = self._run_rounds(sched, [a, b], rounds=1000)
        assert abs(sent[id(a)] - sent[id(b)]) <= 1

    def test_unequal_weights_share_proportionally(self):
        sched = EtsScheduler(LINE)
        sched.configure([EtsQueueConfig(0, 0.75), EtsQueueConfig(1, 0.25)])
        a, b = StubQp(backlog=10**9), StubQp(backlog=10**9)
        sched.assign(a, 0)
        sched.assign(b, 1)
        sent, _ = self._run_rounds(sched, [a, b], rounds=1000)
        ratio = sent[id(a)] / sent[id(b)]
        assert 2.4 < ratio < 3.6

    def test_work_conserving_idle_queue_yields_bandwidth(self):
        # Spec behaviour (§6.2.1): queue 1 empty => queue 0 gets it all.
        sched = EtsScheduler(LINE, work_conserving=True)
        sched.configure([EtsQueueConfig(0, 0.5), EtsQueueConfig(1, 0.5)])
        a = StubQp(backlog=10**9)
        sched.assign(a, 0)
        sent, elapsed = self._run_rounds(sched, [a], rounds=1000)
        # 1000 packets back-to-back: full line rate, no gaps.
        assert sent[id(a)] == 1000
        assert elapsed == 1000 * (1024 * 8 * 1_000_000_000 // LINE)

    def test_non_work_conserving_caps_at_guaranteed_rate(self):
        # The CX6 Dx bug: the queue cannot exceed 50% of line rate even
        # though the other queue is idle.
        sched = EtsScheduler(LINE, work_conserving=False)
        sched.configure([EtsQueueConfig(0, 0.5), EtsQueueConfig(1, 0.5)])
        a = StubQp(backlog=10**9)
        sched.assign(a, 0)
        sent, elapsed = self._run_rounds(sched, [a], rounds=1000)
        line_rate_time = sent[id(a)] * (1024 * 8 * 1_000_000_000 // LINE)
        # Wall-clock is ~2x the line-rate time: queue held to 50 Gbps.
        assert elapsed >= 1.8 * line_rate_time

    def test_bytes_accounting(self):
        sched = EtsScheduler(LINE)
        sched.configure([EtsQueueConfig(0, 1.0)])
        qp = StubQp(backlog=10)
        sched.assign(qp, 0)
        sched.account(qp, 0, 2048)
        assert sched.queue_bytes_sent(0) == 2048
