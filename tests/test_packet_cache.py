"""Wire-serialization caching on Packet and the icrc_for memo."""

from repro.net.checksum import icrc_for
from repro.net.headers import (
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    UdpHeader,
)
from repro.net.packet import Packet
from repro.switch.events import RewriteRule


def make_packet(payload_len: int = 256) -> Packet:
    return Packet(
        eth=EthernetHeader(dst_mac=0x1, src_mac=0x2),
        ip=Ipv4Header(src_ip=0x0A000001, dst_ip=0x0A000002),
        udp=UdpHeader(src_port=0xC001, dst_port=4791),
        bth=BaseTransportHeader(opcode=Opcode.RDMA_WRITE_ONLY,
                                dest_qp=0x11, psn=5),
        payload_len=payload_len,
    )


class TestPackHeadersCache:
    def test_repeat_calls_hit_the_cache(self):
        packet = make_packet()
        first = packet.pack_headers()
        assert packet.pack_headers() is first  # cached object, not a copy

    def test_cached_bytes_match_fresh_serialization(self):
        packet = make_packet()
        cached = packet.pack_headers()
        assert cached == make_packet().pack_headers()

    def test_invalidate_after_header_mutation(self):
        packet = make_packet()
        before = packet.pack_headers()
        packet.ip.ecn = 3
        packet.invalidate_wire_cache()
        after = packet.pack_headers()
        assert after != before
        assert after == make_packet_with_ecn().pack_headers()

    def test_copy_does_not_inherit_cache(self):
        packet = make_packet()
        packet.pack_headers()  # warm the original's cache
        clone = packet.copy()
        clone.ip.ttl = 42  # mirror-style stamping, no invalidate needed
        assert clone.pack_headers() != packet.pack_headers()

    def test_rewrite_rule_invalidates(self):
        packet = make_packet()
        before = packet.pack_headers()
        rule = RewriteRule(field_name="migreq", value=0)
        rule.apply(packet)
        assert not packet.bth.migreq
        assert packet.pack_headers() != before

    def test_cache_excluded_from_equality(self):
        warm, cold = make_packet(), make_packet()
        warm.pack_headers()
        # packet_id always differs; compare the caching-relevant parts.
        assert warm.eth == cold.eth and warm.ip == cold.ip
        assert warm._packed_headers is not None
        assert cold._packed_headers is None


def make_packet_with_ecn() -> Packet:
    packet = make_packet()
    packet.ip.ecn = 3
    return packet


class TestIcrcCache:
    def test_icrc_stable_and_cached(self):
        packet = make_packet()
        assert packet.icrc() == packet.icrc() == make_packet().icrc()

    def test_corruption_flip_needs_no_invalidation(self):
        packet = make_packet()
        clean = packet.icrc()
        packet.icrc_ok = False
        corrupted = packet.icrc()
        assert corrupted == clean ^ 0xDEADBEEF
        packet.icrc_ok = True
        assert packet.icrc() == clean

    def test_invalidate_recomputes_after_bth_mutation(self):
        packet = make_packet()
        before = packet.icrc()
        packet.bth.psn = 99
        packet.invalidate_wire_cache()
        assert packet.icrc() != before


class TestIcrcForMemo:
    def test_memoised_values_consistent(self):
        icrc_for.cache_clear()
        transport = make_packet().bth.pack()
        first = icrc_for(transport, 512)
        again = icrc_for(bytes(transport), 512)
        assert first == again
        info = icrc_for.cache_info()
        assert info.hits >= 1 and info.misses >= 1

    def test_payload_length_is_part_of_the_key(self):
        transport = make_packet().bth.pack()
        assert icrc_for(transport, 0) != icrc_for(transport, 1)
