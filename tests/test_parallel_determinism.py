"""Determinism of parallel campaign execution.

The contract (DESIGN.md): ``batch_size`` fixes the fuzzing schedule,
``workers`` only decides how each batch is executed — so a campaign's
report must be field-for-field identical for any worker count, and a
broken pool (falling back to in-process execution) must not change the
result either.
"""

import pytest

from repro import quick_config
from repro.core.fuzz import LuminaFuzzer
from repro.core.suite import run_conformance_suite
from repro.exec import runner as runner_mod

SEED = 7
ITERATIONS = 8
BATCH = 2


def _base_config():
    return quick_config(nic="e810", verb="write", num_msgs=2,
                        message_size=10240, num_connections=2)


def _campaign(workers: int):
    fuzzer = LuminaFuzzer(_base_config(), seed=SEED, anomaly_threshold=2.5)
    return fuzzer.run(iterations=ITERATIONS, batch_size=BATCH,
                      workers=workers)


def _assert_reports_identical(a, b):
    assert a.iterations_run == b.iterations_run
    assert a.invalid_runs == b.invalid_runs
    assert a.pool_scores == b.pool_scores
    assert len(a.findings) == len(b.findings)
    for fa, fb in zip(a.findings, b.findings):
        assert fa.iteration == fb.iteration
        assert fa.config == fb.config
        assert fa.score == fb.score


class TestFuzzDeterminism:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return _campaign(workers=1)

    def test_campaign_finds_something(self, serial_report):
        # Guards the fixture: an empty report would make the equality
        # assertions below vacuous.
        assert serial_report.findings
        assert serial_report.pool_scores

    @pytest.mark.parametrize("workers", [2, 4])
    def test_report_identical_for_any_worker_count(self, serial_report,
                                                   workers):
        _assert_reports_identical(serial_report, _campaign(workers))

    def test_batch_size_one_matches_historical_serial_schedule(self):
        # batch_size=1 must reproduce the pre-batching RNG consumption
        # order exactly, so two campaigns differing only in batch
        # *submission* (not size) agree.
        a = LuminaFuzzer(_base_config(), seed=3).run(iterations=4)
        b = LuminaFuzzer(_base_config(), seed=3).run(iterations=4,
                                                     batch_size=1, workers=1)
        _assert_reports_identical(a, b)

    def test_broken_pool_fallback_preserves_report(self, serial_report,
                                                   monkeypatch):
        def no_pools(*args, **kwargs):
            raise OSError("no process pools on this platform")

        monkeypatch.setattr(runner_mod.concurrent.futures,
                            "ProcessPoolExecutor", no_pools)
        degraded = _campaign(workers=4)
        _assert_reports_identical(serial_report, degraded)


class TestSuiteDeterminism:
    CHECKS = ["gbn-logic", "corruption-detection", "counter-consistency"]

    def test_scorecard_identical_across_worker_counts(self):
        serial = run_conformance_suite("cx5", checks=self.CHECKS, workers=1)
        pooled = run_conformance_suite("cx5", checks=self.CHECKS, workers=2)
        assert [r.name for r in serial.results] == \
               [r.name for r in pooled.results]
        assert serial.results == pooled.results
        assert serial.passed == pooled.passed
