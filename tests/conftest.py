"""Shared fixtures and cached scenario runner for the test suite.

Many tests inspect different aspects of the same simulated scenario;
``run_scenario`` memoises full test runs by their parameters so the
suite stays fast without sharing mutable state between tests (results
are treated as read-only).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import pytest

from repro.core.config import (
    DataPacketEvent,
    DumperPoolConfig,
    HostConfig,
    RoceParameters,
    SwitchConfig,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import run_test
from repro.core.results import TestResult
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> SimRandom:
    return SimRandom(1234)


@lru_cache(maxsize=None)
def _run_cached(nic: str, nic_responder: str, verb: str, num_connections: int,
                num_msgs: int, message_size: int, mtu: int,
                events: Tuple[DataPacketEvent, ...], seed: int,
                barrier_sync: bool, tx_depth: int,
                timeout_cfg: int, retry_cnt: int,
                adaptive: bool, rp_enable: bool, np_enable: bool,
                cnp_interval_us: int, num_dumpers: int,
                event_injection: bool, mirroring: bool,
                max_duration_ms: int) -> TestResult:
    roce = RoceParameters(
        dcqcn_rp_enable=rp_enable,
        dcqcn_np_enable=np_enable,
        min_time_between_cnps_us=cnp_interval_us,
        adaptive_retrans=adaptive,
    )
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",), roce=roce),
        responder=HostConfig(nic_type=nic_responder or nic,
                             ip_list=("10.0.0.2/24",), roce=roce),
        traffic=TrafficConfig(
            num_connections=num_connections,
            rdma_verb=verb,
            num_msgs_per_qp=num_msgs,
            message_size=message_size,
            mtu=mtu,
            barrier_sync=barrier_sync,
            tx_depth=tx_depth,
            min_retransmit_timeout=timeout_cfg,
            max_retransmit_retry=retry_cnt,
            data_pkt_events=events,
        ),
        dumpers=DumperPoolConfig(num_servers=num_dumpers),
        switch=SwitchConfig(event_injection=event_injection, mirroring=mirroring),
        seed=seed,
        max_duration_ns=max_duration_ms * 1_000_000,
    )
    return run_test(config)


def run_scenario(nic: str = "ideal", verb: str = "write",
                 num_connections: int = 1, num_msgs: int = 3,
                 message_size: int = 4096, mtu: int = 1024,
                 events: Tuple[DataPacketEvent, ...] = (), seed: int = 1,
                 nic_responder: str = "", barrier_sync: bool = True,
                 tx_depth: int = 1, timeout_cfg: int = 14, retry_cnt: int = 7,
                 adaptive: bool = False, rp_enable: bool = True,
                 np_enable: bool = True, cnp_interval_us: int = 4,
                 num_dumpers: int = 2, event_injection: bool = True,
                 mirroring: bool = True,
                 max_duration_ms: int = 20_000) -> TestResult:
    """Run (or fetch the cached result of) a standard two-host test."""
    return _run_cached(nic, nic_responder, verb, num_connections, num_msgs,
                       message_size, mtu, tuple(events), seed, barrier_sync,
                       tx_depth, timeout_cfg, retry_cnt, adaptive, rp_enable,
                       np_enable, cnp_interval_us, num_dumpers,
                       event_injection, mirroring, max_duration_ms)


def drop(qpn: int = 1, psn: int = 2, iteration: int = 1) -> DataPacketEvent:
    return DataPacketEvent(qpn=qpn, psn=psn, type="drop", iter=iteration)


def ecn(qpn: int = 1, psn: int = 2, iteration: int = 1) -> DataPacketEvent:
    return DataPacketEvent(qpn=qpn, psn=psn, type="ecn", iter=iteration)


def corrupt(qpn: int = 1, psn: int = 2, iteration: int = 1) -> DataPacketEvent:
    return DataPacketEvent(qpn=qpn, psn=psn, type="corrupt", iter=iteration)
