"""Unit tests for the switch data plane pipeline (Fig. 6)."""

import pytest

from repro.net.headers import (
    BaseTransportHeader,
    ECN_CE,
    ECN_ECT0,
    Ipv4Header,
    Opcode,
    UdpHeader,
)
from repro.net.link import Node, connect, gbps
from repro.net.packet import EventType, Packet
from repro.sim.rng import SimRandom
from repro.switch.controlplane import SwitchController
from repro.switch.events import EventEntry, RewriteRule
from repro.switch.pipeline import PIPELINE_STAGES, TofinoSwitch


class Host(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, port, packet):
        self.received.append(packet)


def build(sim, event_injection=True, mirroring=True, dumpers=0):
    switch = TofinoSwitch(sim, "sw", SimRandom(3),
                          event_injection=event_injection, mirroring=mirroring)
    a, b = Host(sim, "a"), Host(sim, "b")
    for host, ip in ((a, 1), (b, 2)):
        sw_port = switch.add_host_port(gbps(100))
        host_port = host.add_port(gbps(100))
        connect(sw_port, host_port, 100)
        switch.set_forwarding(ip, sw_port)
    dumper_hosts = []
    for i in range(dumpers):
        port = switch.add_dumper_port(gbps(100))
        d = Host(sim, f"d{i}")
        connect(port, d.add_port(gbps(100)), 100)
        dumper_hosts.append(d)
    return switch, a, b, dumper_hosts


def data_packet(src=1, dst=2, qpn=7, psn=5, opcode=Opcode.SEND_ONLY, migreq=True):
    return Packet(
        ip=Ipv4Header(src_ip=src, dst_ip=dst, ecn=ECN_ECT0),
        udp=UdpHeader(src_port=0xC001, dst_port=4791),
        bth=BaseTransportHeader(opcode=opcode, dest_qp=qpn, psn=psn, migreq=migreq),
        payload_len=256,
    )


class TestForwarding:
    def test_forwards_by_destination_ip(self, sim):
        switch, a, b, _ = build(sim)
        a.ports[0].send(data_packet(src=1, dst=2))
        sim.run()
        assert len(b.received) == 1
        assert len(a.received) == 0

    def test_unknown_destination_dropped(self, sim):
        switch, a, b, _ = build(sim)
        a.ports[0].send(data_packet(dst=99))
        sim.run()
        assert not b.received

    def test_pipeline_latency_applied(self, sim):
        switch, a, b, _ = build(sim)
        a.ports[0].send(data_packet())
        sim.run()
        # serialization + 100 prop + pipeline + serialization + 100 prop
        assert sim.now >= switch.pipeline_latency_ns + 200

    def test_foreign_port_forwarding_rejected(self, sim):
        switch, a, _, _ = build(sim)
        with pytest.raises(ValueError):
            switch.set_forwarding(5, a.ports[0])

    def test_latency_grows_with_enabled_features(self, sim):
        full = TofinoSwitch(sim, "f", SimRandom(1))
        bare = TofinoSwitch(sim, "b", SimRandom(1),
                            event_injection=False, mirroring=False)
        assert full.pipeline_latency_ns > bare.pipeline_latency_ns
        assert full.pipeline_latency_ns < 400  # §5: <0.4 µs

    def test_pipeline_stage_claim(self):
        assert PIPELINE_STAGES == 4


class TestEventInjection:
    def test_drop_event(self, sim):
        switch, a, b, _ = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "drop"))
        a.ports[0].send(data_packet(psn=5))
        a.ports[0].send(data_packet(psn=6))
        sim.run()
        assert [p.bth.psn for p in b.received] == [6]
        assert switch.dropped_by_event == 1

    def test_ecn_event_marks_ce(self, sim):
        switch, a, b, _ = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "ecn"))
        a.ports[0].send(data_packet(psn=5))
        sim.run()
        assert b.received[0].ip.ecn == ECN_CE
        assert switch.ecn_marked_by_event == 1

    def test_corrupt_event_invalidates_icrc(self, sim):
        switch, a, b, _ = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "corrupt"))
        a.ports[0].send(data_packet(psn=5))
        sim.run()
        assert b.received[0].icrc_ok is False

    def test_event_matches_specific_iteration_only(self, sim):
        switch, a, b, _ = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 2, "drop"))
        a.ports[0].send(data_packet(psn=5))  # ITER 1: forwarded
        sim.run()
        a.ports[0].send(data_packet(psn=5))  # same PSN -> ITER 2: dropped
        sim.run()
        assert len(b.received) == 1
        assert switch.dropped_by_event == 1

    def test_events_ignore_control_packets(self, sim):
        # Footnote 2: no events on ACK/NACK.
        switch, a, b, _ = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "drop"))
        a.ports[0].send(data_packet(psn=5, opcode=Opcode.ACKNOWLEDGE))
        sim.run()
        assert len(b.received) == 1

    def test_event_injection_disabled_ignores_table(self, sim):
        switch, a, b, _ = build(sim, event_injection=False)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "drop"))
        a.ports[0].send(data_packet(psn=5))
        sim.run()
        assert len(b.received) == 1

    def test_rewrite_rule_sets_migreq(self, sim):
        switch, a, b, _ = build(sim)
        switch.install_rewrite(RewriteRule(field_name="migreq", value=1, src_ip=1))
        a.ports[0].send(data_packet(migreq=False))
        sim.run()
        assert b.received[0].bth.migreq is True

    def test_clear_events(self, sim):
        switch, a, b, _ = build(sim)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "drop"))
        switch.install_rewrite(RewriteRule(field_name="migreq", value=1))
        switch.clear_events()
        a.ports[0].send(data_packet(psn=5, migreq=False))
        sim.run()
        assert len(b.received) == 1
        assert b.received[0].bth.migreq is False


class TestMirroring:
    def test_every_roce_packet_mirrored(self, sim):
        switch, a, b, dumpers = build(sim, dumpers=1)
        for psn in range(5):
            a.ports[0].send(data_packet(psn=psn))
        sim.run()
        assert len(dumpers[0].received) == 5
        assert all(p.is_mirror for p in dumpers[0].received)

    def test_dropped_packets_still_mirrored(self, sim):
        # §3.4: mirroring happens at ingress before the MMU drop.
        switch, a, b, dumpers = build(sim, dumpers=1)
        switch.install_event(EventEntry(1, 2, 7, 5, 1, "drop"))
        a.ports[0].send(data_packet(psn=5))
        sim.run()
        assert len(b.received) == 0
        assert len(dumpers[0].received) == 1
        assert dumpers[0].received[0].ip.ttl == EventType.DROP

    def test_mirror_metadata_event_type_none_by_default(self, sim):
        switch, a, b, dumpers = build(sim, dumpers=1)
        a.ports[0].send(data_packet())
        sim.run()
        assert dumpers[0].received[0].ip.ttl == EventType.NONE

    def test_mirroring_disabled(self, sim):
        switch, a, b, dumpers = build(sim, mirroring=False, dumpers=1)
        a.ports[0].send(data_packet())
        sim.run()
        assert not dumpers[0].received

    def test_mirror_copies_count_in_dump_counters(self, sim):
        switch, a, b, _ = build(sim, dumpers=1)
        for psn in range(3):
            a.ports[0].send(data_packet(psn=psn))
        sim.run()
        counters = switch.dump_counters()
        assert counters["mirrored_packets"] == 3
        assert counters["roce_rx_packets"] == 3


class TestControlPlane:
    def test_install_events_via_controller(self, sim):
        switch, a, b, _ = build(sim)
        controller = SwitchController(switch)
        installed = controller.install_events([
            EventEntry(1, 2, 7, 5, 1, "drop"),
            EventEntry(1, 2, 7, 6, 1, "ecn"),
        ])
        assert installed == 2
        assert controller.event_table_occupancy == 2

    def test_counters_rpc(self, sim):
        switch, a, b, _ = build(sim, dumpers=1)
        controller = SwitchController(switch)
        a.ports[0].send(data_packet())
        sim.run()
        counters = controller.dump_counters()
        assert counters["roce_rx_packets"] == 1
        assert "ports" in counters
        assert controller.mirrored_packets == 1

    def test_rpc_log_records_calls(self, sim):
        switch, *_ = build(sim)
        controller = SwitchController(switch)
        controller.install_events([])
        controller.clear_events()
        controller.dump_counters()
        assert controller.rpc_log == [
            "install_events(0)", "clear_events()", "dump_counters()",
        ]
