"""Tests for the genetic fuzzing module (Algorithm 1)."""

import pytest

from repro import quick_config
from repro.core.config import DataPacketEvent, TrafficConfig
from repro.core.fuzz import (
    LuminaFuzzer,
    MUTATORS,
    Score,
    ScoreWeights,
    clamp_events,
    mutate,
    score_result,
)
from repro.core.orchestrator import run_test
from repro.sim.rng import SimRandom

from conftest import drop, run_scenario


class TestMutators:
    def test_mutation_always_yields_valid_config(self):
        rng = SimRandom(5)
        traffic = TrafficConfig(num_connections=4, message_size=10240,
                                data_pkt_events=(DataPacketEvent(1, 5, "drop"),))
        for _ in range(300):
            traffic = mutate(traffic, rng)
            # Constructor validation ran inside mutate; re-validate the
            # invariants the orchestrator depends on.
            assert 1 <= traffic.num_connections <= 64
            for event in traffic.data_pkt_events:
                assert event.qpn <= traffic.num_connections
                assert event.psn <= traffic.packets_per_connection

    def test_clamp_drops_out_of_range_events(self):
        traffic = TrafficConfig(num_connections=2, message_size=10240,
                                data_pkt_events=(DataPacketEvent(2, 10, "drop"),))
        shrunk = clamp_events(
            TrafficConfig(num_connections=1, message_size=1024,
                          num_msgs_per_qp=1))
        assert not shrunk.data_pkt_events
        assert traffic.data_pkt_events  # original untouched

    def test_mutation_deterministic_per_seed(self):
        base = TrafficConfig(num_connections=2, message_size=10240)
        a = mutate(base, SimRandom(9), rounds=3)
        b = mutate(base, SimRandom(9), rounds=3)
        assert a == b

    def test_all_mutators_callable(self):
        rng = SimRandom(1)
        base = TrafficConfig(num_connections=4, message_size=10240)
        for mutator in MUTATORS:
            result = mutator(base, rng)
            assert isinstance(result, TrafficConfig)


class TestScoring:
    def test_clean_run_scores_zero(self):
        result = run_scenario(nic="cx5", verb="write", num_msgs=2,
                              message_size=4096)
        score = score_result(result)
        assert score.valid
        assert score.total == 0.0
        assert not score.anomalies

    def test_counter_bug_scores(self):
        result = run_scenario(nic="e810", verb="write", num_msgs=2,
                              message_size=4096,
                              events=(DataPacketEvent(1, 3, "ecn"),), seed=9)
        score = score_result(result)
        assert score.total >= 3.0
        assert "counter_inconsistency" in score.components

    def test_innocent_flow_penalty_scores_high(self):
        result = run_scenario(nic="cx4", verb="read", num_connections=20,
                              num_msgs=2, message_size=20480,
                              events=tuple(drop(qpn=q, psn=5)
                                           for q in range(1, 15)),
                              seed=11, max_duration_ms=60_000)
        score = score_result(result)
        assert "innocent_inflation" in score.components
        assert "unexplained_discards" in score.components

    def test_weights_scale_components(self):
        result = run_scenario(nic="e810", verb="write", num_msgs=2,
                              message_size=4096,
                              events=(DataPacketEvent(1, 3, "ecn"),), seed=9)
        light = score_result(result, ScoreWeights(counter_inconsistency=1.0))
        heavy = score_result(result, ScoreWeights(counter_inconsistency=10.0))
        assert heavy.total > light.total

    def test_score_add_ignores_non_positive(self):
        score = Score()
        score.add("x", 0.0)
        score.add("y", -1.0)
        assert score.total == 0.0
        assert not score.components


class TestFuzzer:
    def _base_config(self, nic="cx5"):
        return quick_config(nic=nic, verb="write", num_msgs=2,
                            message_size=10240, num_connections=2)

    def test_runs_requested_iterations(self):
        fuzzer = LuminaFuzzer(self._base_config(), seed=3)
        report = fuzzer.run(iterations=4)
        assert report.iterations_run == 4
        assert len(report.pool_scores) <= 4

    def test_deterministic_given_seed(self):
        a = LuminaFuzzer(self._base_config(), seed=3).run(iterations=4)
        b = LuminaFuzzer(self._base_config(), seed=3).run(iterations=4)
        assert a.pool_scores == b.pool_scores
        assert len(a.findings) == len(b.findings)

    def test_finds_e810_counter_bug(self):
        # Fuzzing an E810 pair: any mutated config that injects ECN hits
        # the stuck cnpSent counter — the fuzzer must surface it.
        fuzzer = LuminaFuzzer(self._base_config(nic="e810"), seed=7,
                              anomaly_threshold=2.5)
        report = fuzzer.run(iterations=12)
        assert report.found_anomaly
        best = report.best
        assert best is not None
        assert any("counter" in a for a in best.score.anomalies)

    def test_stop_on_first(self):
        fuzzer = LuminaFuzzer(self._base_config(nic="e810"), seed=7,
                              anomaly_threshold=2.5)
        report = fuzzer.run(iterations=30, stop_on_first=True)
        assert len(report.findings) == 1
        assert report.iterations_run < 30

    def test_pool_grows_with_selection(self):
        fuzzer = LuminaFuzzer(self._base_config(), seed=3)
        initial_pool = len(fuzzer.pool)
        fuzzer.run(iterations=6)
        assert len(fuzzer.pool) >= initial_pool

    def test_finding_config_replays(self):
        fuzzer = LuminaFuzzer(self._base_config(nic="e810"), seed=7,
                              anomaly_threshold=2.5)
        report = fuzzer.run(iterations=12)
        finding = report.best
        replay = run_test(finding.config)
        replay_score = score_result(replay)
        assert replay_score.total == pytest.approx(finding.score.total)

    def test_summary_text(self):
        fuzzer = LuminaFuzzer(self._base_config(nic="e810"), seed=7,
                              anomaly_threshold=2.5)
        report = fuzzer.run(iterations=12)
        assert "score=" in report.best.summary()
