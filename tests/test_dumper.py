"""Unit tests for dump records and the dumper server/pool."""

import pytest

from repro.dumper.records import (
    TRIM_BYTES,
    DumpRecord,
    make_record,
    parse_record,
)
from repro.dumper.server import DumperServer
from repro.net.addressing import ROCEV2_UDP_PORT
from repro.net.headers import (
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    RdmaExtendedHeader,
    UdpHeader,
)
from repro.net.link import Node, connect, gbps
from repro.net.packet import EventType, Packet


def mirrored_packet(psn=5, opcode=Opcode.RDMA_WRITE_ONLY, payload=1024,
                    mirror_seq=3, timestamp=777, event=EventType.NONE,
                    udp_dst=12345):
    packet = Packet(
        eth=EthernetHeader(src_mac=mirror_seq, dst_mac=timestamp),
        ip=Ipv4Header(src_ip=1, dst_ip=2, ttl=event),
        udp=UdpHeader(src_port=0xC000, dst_port=udp_dst),
        bth=BaseTransportHeader(opcode=opcode, dest_qp=9, psn=psn),
        payload_len=payload,
        is_mirror=True,
    )
    if opcode in (Opcode.RDMA_WRITE_ONLY, Opcode.RDMA_WRITE_FIRST,
                  Opcode.RDMA_READ_REQUEST):
        packet.reth = RdmaExtendedHeader(virtual_address=0x1000, rkey=5,
                                         dma_length=payload)
    if opcode in (Opcode.ACKNOWLEDGE, Opcode.RDMA_READ_RESPONSE_LAST,
                  Opcode.RDMA_READ_RESPONSE_ONLY):
        packet.aeth = AckExtendedHeader.ack(1)
    # IP/UDP length fields must be consistent for payload recovery.
    packet.ip.total_length = packet.size - 14
    packet.udp.length = packet.ip.total_length - 20
    return packet


class TestRecords:
    def test_record_is_trimmed_to_128_bytes(self):
        record = make_record(mirrored_packet(payload=1024), 10, "d0", 0)
        assert len(record.raw) == TRIM_BYTES

    def test_small_packet_not_padded_beyond_wire_size(self):
        packet = mirrored_packet(opcode=Opcode.ACKNOWLEDGE, payload=0)
        record = make_record(packet, 10, "d0", 0)
        assert len(record.raw) == packet.size

    def test_parse_roundtrip_write(self):
        packet = mirrored_packet()
        parsed = parse_record(make_record(packet, 42, "d0", 3))
        assert parsed.opcode == Opcode.RDMA_WRITE_ONLY
        assert parsed.psn == 5
        assert parsed.dest_qp == 9
        assert parsed.payload_len == 1024
        assert parsed.reth is not None
        assert parsed.rx_time_ns == 42
        assert parsed.server == "d0"
        assert parsed.core == 3

    def test_parse_roundtrip_ack(self):
        packet = mirrored_packet(opcode=Opcode.ACKNOWLEDGE, payload=0)
        parsed = parse_record(make_record(packet, 1, "d0", 0))
        assert parsed.aeth is not None
        assert parsed.aeth.is_ack
        assert parsed.payload_len == 0

    def test_parse_decodes_mirror_metadata(self):
        packet = mirrored_packet(mirror_seq=17, timestamp=123456,
                                 event=EventType.DROP)
        parsed = parse_record(make_record(packet, 1, "d0", 0))
        assert parsed.mirror_seq == 17
        assert parsed.switch_timestamp_ns == 123456
        assert parsed.event_type == EventType.DROP
        assert parsed.event_name == "drop"

    def test_conn_key_direction(self):
        parsed = parse_record(make_record(mirrored_packet(), 1, "d0", 0))
        assert parsed.conn_key == (1, 2, 9)

    def test_restored_rewrites_udp_port(self):
        record = make_record(mirrored_packet(udp_dst=55555), 1, "d0", 0)
        restored = record.restored()
        assert parse_record(restored).udp.dst_port == ROCEV2_UDP_PORT
        # Original record is unchanged (restore returns a copy).
        assert parse_record(record).udp.dst_port == 55555

    def test_truncated_record_restores_unchanged(self):
        record = DumpRecord(raw=b"\x00" * 10, rx_time_ns=0, server="d", core=0)
        assert record.restored().raw == record.raw


class _SwitchStub(Node):
    def handle_packet(self, port, packet):  # pragma: no cover
        pass


def wire_server(sim, num_cores=4, core_service_ns=170, ring_slots=8,
                bandwidth=gbps(100)):
    server = DumperServer(sim, "d0", bandwidth, num_cores=num_cores,
                          core_service_ns=core_service_ns, ring_slots=ring_slots)
    stub = _SwitchStub(sim, "sw")
    out = stub.add_port(bandwidth)
    connect(out, server.port, 100)
    return server, out


class TestDumperServer:
    def test_packets_become_records(self, sim):
        server, out = wire_server(sim)
        for psn in range(5):
            out.send(mirrored_packet(psn=psn, udp_dst=1000 + psn))
        sim.run()
        assert server.buffered_records == 5

    def test_rss_spreads_random_ports_across_cores(self, sim):
        server, out = wire_server(sim, num_cores=4)
        for i in range(64):
            out.send(mirrored_packet(psn=i, udp_dst=5000 + i * 13))
        sim.run()
        busy = [c for c in server.core_stats if c["processed"] > 0]
        assert len(busy) >= 3

    def test_single_flow_hits_single_core(self, sim):
        server, out = wire_server(sim, num_cores=4)
        for i in range(32):
            out.send(mirrored_packet(psn=i, udp_dst=4791))
        sim.run()
        busy = [c for c in server.core_stats if c["processed"] > 0]
        assert len(busy) == 1

    def test_ring_overflow_drops(self, sim):
        # One flow, tiny ring, slow core: line-rate burst must overflow.
        server, out = wire_server(sim, num_cores=2, ring_slots=4,
                                  core_service_ns=5_000)
        for i in range(64):
            out.send(mirrored_packet(psn=i, udp_dst=4791))
        sim.run()
        assert server.rx_discards > 0
        assert server.buffered_records < 64

    def test_terminate_restores_ports_and_writes_disk(self, sim):
        server, out = wire_server(sim)
        out.send(mirrored_packet(udp_dst=9999))
        sim.run()
        records = server.terminate()
        assert len(records) == 1
        assert parse_record(records[0]).udp.dst_port == ROCEV2_UDP_PORT
        assert server.disk_file is not None

    def test_terminate_counts_ring_backlog_as_lost(self, sim):
        # Slow cores + a burst: TERM arrives while rings still hold
        # packets. Those packets never become records, so they must be
        # visible as capture loss, not silently vanish.
        server, out = wire_server(sim, num_cores=2, ring_slots=64,
                                  core_service_ns=50_000)
        for i in range(32):
            out.send(mirrored_packet(psn=i, udp_dst=4791))
        sim.run_for(100_000)  # deliver the burst, barely service any
        backlog = sum(core.backlog for core in server.cores)
        assert backlog > 0
        records = server.terminate()
        assert server.term_dropped == backlog
        assert server.rx_discards == backlog  # folded into discards
        assert len(records) + backlog == 32   # nothing vanishes uncounted
        assert sum(c["term_dropped"] for c in server.core_stats) == backlog
        assert all(core.backlog == 0 for core in server.cores)

    def test_terminate_with_empty_rings_drops_nothing(self, sim):
        server, out = wire_server(sim)
        out.send(mirrored_packet(udp_dst=4791))
        sim.run()
        server.terminate()
        assert server.term_dropped == 0
        assert server.rx_discards == 0

    def test_packets_after_terminate_ignored(self, sim):
        server, out = wire_server(sim)
        server.terminate()
        out.send(mirrored_packet())
        sim.run()
        assert server.buffered_records == 0

    def test_capacity_pps(self, sim):
        server, _ = wire_server(sim, num_cores=8, core_service_ns=170)
        assert server.capacity_pps == 8 * (1_000_000_000 // 170)

    def test_needs_at_least_one_core(self, sim):
        with pytest.raises(ValueError):
            DumperServer(sim, "bad", gbps(10), num_cores=0)
