"""Unit tests for ports, links and serialization timing."""

import pytest

from repro.net.link import Node, connect, gbps
from repro.net.packet import Packet


class Sink(Node):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, port, packet):
        self.received.append((self.sim.now, packet))


def wire(sim, bandwidth=gbps(100), delay=500, queue_bytes=None):
    a = Sink(sim, "a")
    b = Sink(sim, "b")
    pa = a.add_port(bandwidth, queue_bytes=queue_bytes)
    pb = b.add_port(bandwidth)
    connect(pa, pb, propagation_delay_ns=delay)
    return a, b, pa, pb


class TestGbps:
    def test_conversion(self):
        assert gbps(100) == 100_000_000_000
        assert gbps(40) == 40_000_000_000
        assert gbps(0.5) == 500_000_000


class TestSerialization:
    def test_delay_formula(self, sim):
        _, _, pa, _ = wire(sim, bandwidth=gbps(100))
        # 1250 bytes * 8 bits = 10000 bits @ 100 Gbps = 100 ns
        assert pa.serialization_delay_ns(1250) == 100

    def test_delay_rounds_up(self, sim):
        _, _, pa, _ = wire(sim, bandwidth=gbps(100))
        assert pa.serialization_delay_ns(1) == 1  # 0.08 ns rounds up

    def test_delivery_time_includes_serialization_and_propagation(self, sim):
        _, b, pa, _ = wire(sim, bandwidth=gbps(100), delay=500)
        pa.send(Packet(payload_len=1236))  # size 1250 -> 100 ns serialization
        sim.run()
        assert b.received[0][0] == 100 + 500

    def test_back_to_back_packets_queue_behind_each_other(self, sim):
        _, b, pa, _ = wire(sim, bandwidth=gbps(100), delay=0)
        for _ in range(3):
            pa.send(Packet(payload_len=1236))  # 100 ns each
        sim.run()
        times = [t for t, _ in b.received]
        assert times == [100, 200, 300]

    def test_full_duplex_is_independent(self, sim):
        a, b, pa, pb = wire(sim, delay=100)
        pa.send(Packet(payload_len=986))   # 1000B -> 80 ns
        pb.send(Packet(payload_len=986))
        sim.run()
        assert len(a.received) == 1
        assert len(b.received) == 1


class TestQueueing:
    def test_bounded_queue_drops_when_full(self, sim):
        _, b, pa, _ = wire(sim, bandwidth=gbps(1), queue_bytes=3000)
        for _ in range(5):
            pa.send(Packet(payload_len=986))  # 1000 B each
        sim.run()
        assert len(b.received) == 3
        assert pa.tx_drops == 2

    def test_queue_drains_over_time(self, sim):
        _, b, pa, _ = wire(sim, bandwidth=gbps(1), queue_bytes=2000)
        pa.send(Packet(payload_len=986))
        pa.send(Packet(payload_len=986))
        sim.run()
        # After draining, new packets are accepted again.
        assert pa.send(Packet(payload_len=986))
        sim.run()
        assert len(b.received) == 3

    def test_unbounded_queue_never_drops(self, sim):
        _, b, pa, _ = wire(sim, bandwidth=gbps(1))
        for _ in range(100):
            assert pa.send(Packet(payload_len=986))
        sim.run()
        assert len(b.received) == 100


class TestCounters:
    def test_tx_rx_counters(self, sim):
        _, _, pa, pb = wire(sim)
        packet = Packet(payload_len=100)
        pa.send(packet)
        sim.run()
        assert pa.tx_packets == 1
        assert pa.tx_bytes == packet.size
        assert pb.rx_packets == 1
        assert pb.rx_bytes == packet.size

    def test_tx_tap_sees_every_packet(self, sim):
        _, _, pa, _ = wire(sim)
        seen = []
        pa.tx_tap = seen.append
        pa.send(Packet(payload_len=10))
        pa.send(Packet(payload_len=20))
        assert len(seen) == 2


class TestWiring:
    def test_send_on_unconnected_port_raises(self, sim):
        node = Sink(sim)
        port = node.add_port(gbps(10))
        with pytest.raises(RuntimeError):
            port.send(Packet())

    def test_double_connect_raises(self, sim):
        a, b, pa, pb = wire(sim)
        c = Sink(sim, "c")
        pc = c.add_port(gbps(10))
        with pytest.raises(RuntimeError):
            connect(pa, pc)

    def test_invalid_bandwidth_rejected(self, sim):
        node = Sink(sim)
        with pytest.raises(ValueError):
            node.add_port(0)

    def test_base_node_handle_packet_abstract(self, sim):
        node = Node(sim, "n")
        with pytest.raises(NotImplementedError):
            node.handle_packet(None, Packet())

    def test_port_naming(self, sim):
        node = Sink(sim, "host")
        port = node.add_port(gbps(10))
        assert port.name == "host.p0"
        named = node.add_port(gbps(10), name="custom")
        assert named.name == "custom"
        assert named.index == 1
