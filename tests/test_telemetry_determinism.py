"""Telemetry must never change simulation results.

The subsystem's core guarantee (see ``repro/telemetry/runtime``): it
observes the simulation but never feeds anything back — no events
scheduled, no draws from the seeded PRNG, no component state mutated.
These tests run identical workloads with telemetry enabled and disabled
and require byte-identical traces, verdicts and scores.
"""

import pytest

from repro.core.config import TestConfig, TrafficConfig
from repro.core.fuzz import LuminaFuzzer
from repro.core.orchestrator import run_test
from repro.core.report import render_report
from repro.core.trace import format_trace
from repro.telemetry import runtime as telemetry


@pytest.fixture(autouse=True)
def _clean_session():
    telemetry.disable()
    yield
    telemetry.disable()


def _config(seed: int = 11) -> TestConfig:
    return TestConfig.from_dict({
        "requester": {"nic": {"type": "cx5", "ip-list": ["10.0.0.1/24"]}},
        "responder": {"nic": {"type": "cx5", "ip-list": ["10.0.0.2/24"]}},
        "traffic": {
            "num-connections": 2,
            "rdma-verb": "write",
            "num-msgs-per-qp": 6,
            "message-size": 8192,
            "mtu": 1024,
            "data-pkt-events": [
                {"qpn": 1, "psn": 3, "type": "drop", "iter": 1},
                {"qpn": 2, "psn": 4, "type": "ecn", "iter": 1},
            ],
        },
        "seed": seed,
    })


def test_run_results_identical_enabled_vs_disabled():
    baseline = run_test(_config())

    telemetry.enable()
    try:
        traced = run_test(_config())
    finally:
        telemetry.disable()

    assert format_trace(traced.trace) == format_trace(baseline.trace)
    assert render_report(traced) == render_report(baseline)
    assert traced.integrity.ok == baseline.integrity.ok
    assert traced.duration_ns == baseline.duration_ns
    assert traced.switch_counters == baseline.switch_counters


def test_fuzzer_scores_identical_enabled_vs_disabled():
    def fuzz_scores():
        fuzzer = LuminaFuzzer(_config(seed=5), seed=5)
        report = fuzzer.run(iterations=3)
        return report.pool_scores, report.iterations_run, report.invalid_runs

    baseline = fuzz_scores()
    telemetry.enable()
    try:
        traced = fuzz_scores()
    finally:
        telemetry.disable()
    assert traced == baseline


def test_enabled_run_actually_collects():
    """Guard against the guarantee being satisfied vacuously."""
    session = telemetry.enable()
    try:
        run_test(_config())
    finally:
        telemetry.disable()
    assert len(session.registry) > 10
    assert len(session.tracer.spans) >= 4  # setup/traffic/drain/collect
    processed = session.registry.find("sim_events_processed", sim="sim")
    assert processed is not None and processed.value > 0
