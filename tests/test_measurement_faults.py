"""Measurement-plane fault injection, gap tolerance and retry (§3.4/§3.5).

The fault layer stresses the *capture* path only — mirror links and
dumper rings — so these tests assert three invariants:

* broken capture is detected (integrity FAIL with the right missing
  seqs), never silently papered over;
* analyzers whose evidence window overlaps a capture gap answer
  INCONCLUSIVE instead of a false PASS/FAIL;
* the integrity-driven retry loop converges when the faults are
  transient and gives up (recording every attempt) when they are not.
"""

import dataclasses

import pytest

from repro import quick_config
from repro.core.config import (
    ConfigError,
    MeasurementFaultConfig,
    RetryPolicy,
    TestConfig,
)
from repro.core.orchestrator import run_test
from repro.core.report import render_report
from repro.core.suite import CHECKS, COVERAGE, Outcome, run_conformance_suite
from repro.faults import SCENARIOS, build_injector, get_scenario
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom


def _config(**overrides) -> TestConfig:
    base = dict(nic="cx5", verb="write", num_connections=2, num_msgs=4,
                message_size=8192, seed=7)
    base.update(overrides)
    return quick_config(**base)


def _faulted(config: TestConfig, faults: MeasurementFaultConfig,
             retry: RetryPolicy = RetryPolicy()) -> TestConfig:
    return dataclasses.replace(config, measurement_faults=faults, retry=retry)


class TestFaultConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MeasurementFaultConfig(mirror_loss_period=-1)
        with pytest.raises(ConfigError):
            MeasurementFaultConfig(mirror_loss_rate=1.5)
        with pytest.raises(ConfigError):
            MeasurementFaultConfig(mirror_loss_burst=0)
        with pytest.raises(ConfigError):
            MeasurementFaultConfig(mirror_delay_period=3)  # no delay-ns
        with pytest.raises(ConfigError):
            MeasurementFaultConfig(ring_slots=0)
        with pytest.raises(ConfigError):
            MeasurementFaultConfig(heal_after_attempt=0)

    def test_inert_by_default(self):
        config = MeasurementFaultConfig()
        assert not config.injects_faults
        assert not config.active_on(1)

    def test_heal_after_attempt_gates_activation(self):
        config = MeasurementFaultConfig(mirror_loss_period=5,
                                        heal_after_attempt=1)
        assert config.active_on(1)
        assert not config.active_on(2)
        persistent = MeasurementFaultConfig(mirror_loss_period=5)
        assert persistent.active_on(99)

    def test_from_dict_hyphenated_keys(self):
        config = MeasurementFaultConfig.from_dict({
            "mirror-loss-period": 7, "mirror-loss-burst": 2,
            "ring-slots": 16, "heal-after-attempt": 1,
        })
        assert config.mirror_loss_period == 7
        assert config.mirror_loss_burst == 2
        assert config.ring_slots == 16
        assert config.heal_after_attempt == 1

    def test_retry_policy_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=3, backoff_ns=1_000,
                             backoff_multiplier=2.0)
        assert [policy.backoff_for(a) for a in (1, 2, 3)] == [1_000, 2_000,
                                                              4_000]
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_config_rejects_negative_drain_deadline(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(_config(), drain_deadline_ns=-1)


class TestInjectorUnit:
    class _FakePort:
        def __init__(self):
            self.sent = []

        def send(self, packet):
            self.sent.append(packet)

    def _injector(self, sim, **kwargs):
        return build_injector(sim, MeasurementFaultConfig(**kwargs),
                              SimRandom(3, "faults"))

    def test_periodic_loss_drops_every_nth(self, sim):
        injector = self._injector(sim, mirror_loss_period=3)
        port = self._FakePort()
        consumed = [injector.on_mirror(port, object()) for _ in range(9)]
        assert consumed == [False, False, True] * 3
        assert injector.dropped == 3
        assert len(port.sent) == 0  # passthrough means caller sends

    def test_burst_extends_each_loss(self, sim):
        injector = self._injector(sim, mirror_loss_period=4,
                                  mirror_loss_burst=2)
        port = self._FakePort()
        consumed = [injector.on_mirror(port, object()) for _ in range(8)]
        # Index 3 is the periodic loss, index 4 is its burst continuation.
        assert consumed == [False, False, False, True, True,
                            False, False, True]

    def test_delay_holds_then_resends(self, sim):
        injector = self._injector(sim, mirror_delay_period=2,
                                  mirror_delay_ns=500)
        port = self._FakePort()
        assert not injector.on_mirror(port, "a")
        assert injector.on_mirror(port, "b")
        assert not injector.quiescent
        sim.run()
        assert injector.quiescent
        assert port.sent == ["b"]
        assert injector.counters() == {"mirror_fault_dropped": 0,
                                       "mirror_fault_delayed": 1}

    def test_build_injector_inert_config_returns_none(self, sim):
        rng = SimRandom(1, "faults")
        assert build_injector(sim, None, rng) is None
        assert build_injector(sim, MeasurementFaultConfig(), rng) is None
        healed = MeasurementFaultConfig(mirror_loss_period=3,
                                        heal_after_attempt=1)
        assert build_injector(sim, healed, rng, attempt=2) is None
        assert build_injector(sim, healed, rng, attempt=1) is not None


class TestScenarios:
    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown measurement-fault"):
            get_scenario("no-such-thing")

    def test_apply_leaves_data_path_untouched(self):
        base = _config()
        for scenario in SCENARIOS.values():
            applied = scenario.apply(base)
            assert applied.measurement_faults is scenario.faults
            assert applied.retry is scenario.retry
            assert applied.traffic == base.traffic
            assert applied.seed == base.seed


class TestEndToEnd:
    def test_periodic_loss_fails_integrity_with_exact_holes(self):
        config = _faulted(_config(), MeasurementFaultConfig(
            mirror_loss_period=7))
        result = run_test(config)
        integrity = result.integrity
        assert not integrity.ok
        assert not integrity.seq_consecutive
        mirrored = int(result.switch_counters["mirrored_packets"])
        expected_missing = list(range(6, mirrored, 7))
        assert integrity.missing_seqs == expected_missing
        # Every hole shows up as an annotated gap with real coverage.
        assert result.trace.has_gaps
        assert {g.first_seq for g in result.trace.gaps} == set(expected_missing)
        assert result.trace.coverage == pytest.approx(
            (mirrored - len(expected_missing)) / mirrored)

    def test_tail_loss_detected(self):
        # A burst long enough to eat the final clones: the trace looks
        # self-consistent (seqs 0..k consecutive) and only the switch's
        # mirrored count betrays the amputated tail.
        config = _faulted(_config(), MeasurementFaultConfig(
            mirror_loss_period=60, mirror_loss_burst=40))
        result = run_test(config)
        mirrored = int(result.switch_counters["mirrored_packets"])
        assert not result.integrity.ok
        assert result.integrity.missing_seqs
        assert result.integrity.missing_seqs[-1] == mirrored - 1
        tail = result.trace.gaps[-1]
        assert tail.last_seq == mirrored - 1
        assert tail.after_ns is None  # open-ended: nothing after the tail

    def test_gapped_trace_makes_checks_inconclusive(self):
        scenario = get_scenario("mirror-loss")
        for name in ("gbn-logic", "counter-consistency"):
            outcome = CHECKS[name]("cx5", 77, scenario)
            assert outcome.is_inconclusive, name
            assert not outcome.passed

    def test_retry_converges_when_faults_heal(self):
        config = _faulted(
            _config(),
            MeasurementFaultConfig(mirror_loss_period=5,
                                   heal_after_attempt=1),
            RetryPolicy(max_attempts=3),
        )
        result = run_test(config)
        assert result.integrity.ok
        assert result.attempts_used == 2
        assert result.retried
        first, second = result.attempts
        assert not first.ok and second.ok
        assert first.backoff_ns == config.retry.backoff_for(1)
        assert second.backoff_ns == 0
        assert not result.trace.has_gaps

    def test_retry_exhaustion_records_every_attempt(self):
        config = _faulted(
            _config(),
            MeasurementFaultConfig(mirror_loss_period=7),
            RetryPolicy(max_attempts=2, backoff_ns=500_000),
        )
        result = run_test(config)
        assert not result.integrity.ok
        assert result.attempts_used == 2
        assert [record.attempt for record in result.attempts] == [1, 2]
        assert all(not record.ok for record in result.attempts)

    def test_adaptive_drain_rescues_delayed_clones(self):
        # Cap the traffic window tightly so only the adaptive drain can
        # pick up clones held 3 ms by the injector (the legacy fixed
        # 2 ms drain would TERM before they land).
        config = dataclasses.replace(
            _faulted(_config(), MeasurementFaultConfig(
                mirror_delay_period=5, mirror_delay_ns=3_000_000)),
            max_duration_ns=100_000,
        )
        result = run_test(config)
        assert result.integrity.ok
        assert int(result.switch_counters["mirror_fault_delayed"]) > 0
        assert result.attempts_used == 1

    def test_drain_bounded_by_deadline(self):
        # Delay far beyond the drain deadline: the run must terminate
        # (integrity FAIL) instead of waiting for the stragglers.
        config = dataclasses.replace(
            _faulted(_config(), MeasurementFaultConfig(
                mirror_delay_period=5, mirror_delay_ns=400_000_000)),
            max_duration_ns=100_000,
            drain_deadline_ns=10_000_000,
        )
        result = run_test(config)
        assert not result.integrity.ok
        assert result.integrity.missing_seqs

    def test_ring_pressure_override_shrinks_rings(self):
        config = _faulted(_config(num_msgs=8), MeasurementFaultConfig(
            ring_slots=1))
        result = run_test(config)
        stats = result.dumper_core_stats
        assert stats  # per-server core stats captured on the result
        for cores in stats.values():
            for core in cores:
                assert "term_dropped" in core

    def test_clean_config_reports_have_no_fault_sections(self):
        report = render_report(run_test(_config()))
        assert "attempts:" not in report
        assert "trace coverage" not in report
        assert "INCONCLUSIVE" not in report
        assert "NOTE: measurement-plane faults" not in report

    def test_faulted_report_carries_integrity_story(self):
        config = _faulted(_config(), MeasurementFaultConfig(
            mirror_loss_period=7), RetryPolicy(max_attempts=2))
        report = render_report(run_test(config))
        assert "trace coverage" in report
        assert "attempts: 2 (integrity-driven retry, §3.5)" in report
        assert "NOTE: measurement-plane faults were injected" in report


class TestSuiteIntegration:
    def test_coverage_declared_for_every_check(self):
        assert set(COVERAGE) == set(CHECKS)
        assert set(COVERAGE.values()) <= {"full-trace", "connection",
                                          "event-window", "none"}

    def test_scorecard_counts_inconclusive_separately(self):
        card = run_conformance_suite(
            "cx5", seed=77, checks=["gbn-logic", "counter-consistency"],
            faults="mirror-loss")
        assert card.inconclusive == 2
        assert card.passed == 0
        assert not card.failures()  # inconclusive is not failure
        assert "2 inconclusive" in card.render()
        assert all(r.outcome is Outcome.INCONCLUSIVE for r in card.results)

    def test_workers_match_serial_under_faults(self):
        checks = ["gbn-logic", "counter-consistency", "cnp-generation"]
        serial = run_conformance_suite("cx5", seed=77, checks=checks,
                                       faults="mirror-loss")
        pooled = run_conformance_suite("cx5", seed=77, checks=checks,
                                       faults="mirror-loss", workers=2)
        assert serial.render() == pooled.render()

    def test_clean_suite_render_unchanged_by_outcome_plumbing(self):
        card = run_conformance_suite("ideal", seed=77, checks=["gbn-logic"])
        assert card.inconclusive == 0
        assert "inconclusive" not in card.render()
