"""Coverage maps: determinism, attachment rules, store round-trips.

The coverage subsystem's contracts (see ``repro/coverage/map``):

* merging per-run snapshots is commutative and associative, so a
  campaign's map — and its canonical JSON document — is byte-identical
  for any ``workers`` count and for crash-resumed campaigns;
* coverage rides on result objects only when a session is active, and
  the flight-recorder timeline is attached only to anomalous outcomes
  (FAIL / INCONCLUSIVE verdicts, integrity-driven retries);
* the store encodes coverage keys only when present, so coverage-off
  artifacts stay byte-identical to the pre-coverage format.
"""

import pytest

from repro import quick_config
from repro.core.fuzz import LuminaFuzzer
from repro.core.orchestrator import run_test, run_tests
from repro.core.suite import (DEFAULT_SUITE_SEED, Outcome,
                              run_conformance_suite, run_single_check)
from repro.core.trace import format_trace
from repro.coverage import runtime as coverage
from repro.coverage.domains import DOMAINS, known_point_count
from repro.coverage.map import CoverageMap, canonical_coverage_json
from repro.faults import get_scenario
from repro.store.serialize import decode_result, encode_result


@pytest.fixture(autouse=True)
def _clean_session():
    coverage.disable()
    yield
    coverage.disable()


def _config(seed: int = 21):
    return quick_config(nic="cx5", verb="write", num_msgs=2,
                        message_size=8192, num_connections=2, seed=seed)


class TestCoverageMap:
    A = [["rdma.gbn", "nak-sent", 2, 500], ["switch.table", "lookup-hit", 9, 10]]
    B = [["rdma.gbn", "nak-sent", 1, 300], ["rdma.dcqcn", "rate-cut", 4, 700]]
    C = [["switch.table", "lookup-hit", 1, 5]]

    def test_merge_order_independent(self):
        def folded(order):
            merged = CoverageMap()
            for snap in order:
                merged.merge_snapshot(snap)
            return canonical_coverage_json(merged.snapshot())

        docs = {folded(order) for order in (
            (self.A, self.B, self.C), (self.C, self.B, self.A),
            (self.B, self.A, self.C))}
        assert len(docs) == 1

    def test_counts_sum_first_hit_min(self):
        merged = CoverageMap()
        merged.merge_snapshot(self.A)
        merged.merge_snapshot(self.B)
        merged.merge_snapshot(self.C)
        assert merged.count("rdma.gbn", "nak-sent") == 3
        assert merged.first_hit_ns("rdma.gbn", "nak-sent") == 300
        assert merged.count("switch.table", "lookup-hit") == 10
        assert merged.first_hit_ns("switch.table", "lookup-hit") == 5
        assert merged.first_hit_ns("rdma.nic", "cnp-sent") is None

    def test_snapshot_round_trip(self):
        original = CoverageMap()
        original.merge_snapshot(self.A)
        original.merge_snapshot(self.B)
        restored = CoverageMap.from_snapshot(original.snapshot())
        assert restored == original
        assert restored.snapshot() == original.snapshot()

    def test_declared_points_are_unique_per_domain(self):
        # The denominator of every coverage report: a duplicated point
        # name would silently deflate "known" counts.
        total = sum(len(points) for points in DOMAINS.values())
        assert known_point_count() == total
        for domain, points in DOMAINS.items():
            assert len(set(points)) == len(points), domain


class TestResultAttachment:
    def test_disabled_run_carries_nothing(self):
        result = run_test(_config())
        assert result.coverage is None
        assert result.flight_record is None

    def test_enabled_clean_run_carries_map_but_no_flight_record(self):
        coverage.enable()
        result = run_test(_config())
        assert result.coverage  # non-empty sorted snapshot rows
        assert result.coverage == sorted(result.coverage)
        hit_domains = {row[0] for row in result.coverage}
        assert "switch.table" in hit_domains
        assert "rdma.gbn" in hit_domains
        # Clean single-attempt run: no anomaly, no flight record.
        assert result.integrity.ok and len(result.attempts) == 1
        assert result.flight_record is None

    def test_enabled_run_does_not_perturb_simulation(self):
        baseline = run_test(_config())
        coverage.enable()
        covered = run_test(_config())
        assert format_trace(covered.trace) == format_trace(baseline.trace)
        assert covered.duration_ns == baseline.duration_ns
        assert covered.integrity.ok == baseline.integrity.ok

    def test_store_round_trip_preserves_coverage(self):
        coverage.enable()
        result = run_test(_config())
        result.flight_record = [[0, 100, "rnic", "gap-nak", "psn=3"]]
        restored = decode_result(encode_result(result))
        assert restored.coverage == result.coverage
        assert restored.flight_record == result.flight_record

    def test_coverage_off_encoding_is_unchanged(self):
        # Byte-compat: pre-coverage artifacts must decode and re-encode
        # without growing new keys.
        result = run_test(_config())
        data = encode_result(result)
        assert "coverage" not in data
        assert "flight-record" not in data


class TestWorkerDeterminism:
    SEEDS = (31, 32, 33, 34)

    def _session_doc(self, workers: int) -> str:
        session = coverage.enable()
        try:
            run_tests([_config(seed) for seed in self.SEEDS],
                      workers=workers)
            return canonical_coverage_json(session.total_snapshot())
        finally:
            coverage.disable()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_batch_map_identical_for_any_worker_count(self, workers):
        assert self._session_doc(workers) == self._session_doc(1)

    def test_suite_map_identical_across_worker_counts(self):
        checks = ["gbn-logic", "corruption-detection"]

        def suite_doc(workers):
            session = coverage.enable()
            try:
                card = run_conformance_suite("cx5", checks=checks,
                                             workers=workers)
                per_check = [check.coverage for check in card.results]
                return canonical_coverage_json(session.total_snapshot()), \
                    per_check
            finally:
                coverage.disable()

        assert suite_doc(2) == suite_doc(1)


class TestFlightRecorder:
    def test_passing_check_has_no_flight_record(self):
        coverage.enable()
        check = run_single_check("gbn-logic", "cx5", DEFAULT_SUITE_SEED)
        assert check.outcome is Outcome.PASS
        assert check.coverage
        assert check.flight_record is None

    def test_inconclusive_check_carries_flight_record(self):
        coverage.enable()
        check = run_single_check("gbn-logic", "cx5", DEFAULT_SUITE_SEED,
                                 get_scenario("mirror-loss"))
        assert check.outcome is Outcome.INCONCLUSIVE
        assert check.flight_record
        # Timeline rows: [seq, sim_ns, component, event, detail].
        components = {row[2] for row in check.flight_record}
        assert components  # at least one ring captured the anomaly


class TestCampaignCoverage:
    ITERATIONS = 4
    BATCH = 2

    def _campaign(self, campaign_dir=None, workers=1):
        session = coverage.enable()
        try:
            fuzzer = LuminaFuzzer(_config(seed=5), seed=5)
            report = fuzzer.run(iterations=self.ITERATIONS,
                                batch_size=self.BATCH, workers=workers,
                                campaign_dir=campaign_dir)
            return report, canonical_coverage_json(session.total_snapshot())
        finally:
            coverage.disable()

    def test_growth_rows_accumulate_monotonically(self):
        report, _ = self._campaign()
        assert report.coverage  # cumulative campaign map rides the report
        assert report.coverage_growth
        totals = [row["total-points"] for row in report.coverage_growth]
        assert totals == sorted(totals)
        assert totals[-1] == len(report.coverage)
        assert [row["generation"] for row in report.coverage_growth] == \
            list(range(1, len(report.coverage_growth) + 1))

    @pytest.mark.parametrize("workers", [2])
    def test_campaign_map_identical_across_worker_counts(self, workers):
        serial_report, serial_doc = self._campaign()
        pooled_report, pooled_doc = self._campaign(workers=workers)
        assert pooled_doc == serial_doc
        assert pooled_report.coverage == serial_report.coverage
        assert pooled_report.coverage_growth == serial_report.coverage_growth

    def test_crash_resumed_campaign_map_is_identical(self, tmp_path,
                                                     monkeypatch):
        clean_report, _ = self._campaign(str(tmp_path / "clean"))

        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN", "1")
        with pytest.raises(SystemExit) as exc:
            self._campaign(str(tmp_path / "crash"))
        assert exc.value.code == 3
        monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_AFTER_GEN")

        resumed_report, _ = self._campaign(str(tmp_path / "crash"))
        assert resumed_report.coverage == clean_report.coverage
        assert resumed_report.coverage_growth == clean_report.coverage_growth
        assert canonical_coverage_json(resumed_report.coverage) == \
            canonical_coverage_json(clean_report.coverage)
