"""Tests for deterministic loss-rate emulation (any-round wildcard events).

A fixed loss pattern like "drop every 100th packet" cannot be expressed
with exact (PSN, ITER) entries alone: the first recovery moves the
connection into ITER 2 and later iter-1 entries go dead. The extension
uses iteration-wildcard entries with max_hits=1 — "drop the first
occurrence of PSN N, whichever round it appears in".
"""

import pytest

from conftest import run_scenario
from repro.core.config import (
    DataPacketEvent,
    DumperPoolConfig,
    HostConfig,
    PeriodicDropIntent,
    PeriodicIntent,
    TestConfig,
    TrafficConfig,
)
from repro.core.intent import expand_periodic_events
from repro.core.orchestrator import run_test
from repro.switch.events import ANY_ITERATION, EventEntry
from repro.switch.tables import MatchActionTable


class TestWildcardTable:
    def _wild(self, psn=4, max_hits=1):
        return EventEntry(1, 2, 3, psn, ANY_ITERATION, "drop",
                          max_hits=max_hits)

    def test_wildcard_matches_any_iteration(self):
        table = MatchActionTable()
        table.install(self._wild(max_hits=0))
        assert table.lookup(1, 2, 3, 4, 1) is not None
        assert table.lookup(1, 2, 3, 4, 5) is not None

    def test_max_hits_exhausts_entry(self):
        table = MatchActionTable()
        table.install(self._wild(max_hits=1))
        assert table.lookup(1, 2, 3, 4, 2) is not None
        assert table.lookup(1, 2, 3, 4, 3) is None  # spent

    def test_exact_entry_takes_precedence(self):
        table = MatchActionTable()
        exact = EventEntry(1, 2, 3, 4, 2, "ecn")
        table.install(exact)
        table.install(self._wild())
        assert table.lookup(1, 2, 3, 4, 2) is exact

    def test_wildcard_counts_toward_capacity(self):
        table = MatchActionTable(capacity=1)
        table.install(self._wild())
        with pytest.raises(RuntimeError):
            table.install(EventEntry(9, 2, 3, 4, 1, "drop"))

    def test_duplicate_wildcard_rejected(self):
        table = MatchActionTable()
        table.install(self._wild())
        with pytest.raises(ValueError):
            table.install(self._wild())

    def test_clear_removes_wildcards(self):
        table = MatchActionTable()
        table.install(self._wild())
        table.clear()
        assert len(table) == 0


class TestPeriodicExpansionTypes:
    def test_drop_intents_expand_to_any_round(self):
        traffic = TrafficConfig(message_size=102400, mtu=1024,
                                num_msgs_per_qp=2)
        events = expand_periodic_events(
            traffic, [PeriodicDropIntent(qpn=1, period=100)])
        assert all(e.iter == 0 for e in events)
        assert all(e.type == "drop" for e in events)

    def test_ecn_intents_stay_first_round(self):
        traffic = TrafficConfig(message_size=102400, mtu=1024,
                                num_msgs_per_qp=2)
        events = expand_periodic_events(
            traffic, [PeriodicIntent(qpn=1, period=50, type="ecn")])
        assert all(e.iter == 1 for e in events)


class TestLossRateEndToEnd:
    def _run(self, period, nic="cx5", msgs=5, seed=19):
        traffic = TrafficConfig(
            num_connections=1, rdma_verb="write", num_msgs_per_qp=msgs,
            message_size=102400, mtu=1024, barrier_sync=False, tx_depth=2,
            min_retransmit_timeout=17,
            periodic_events=(PeriodicDropIntent(qpn=1, period=period),),
        )
        config = TestConfig(
            requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
            responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",)),
            traffic=traffic, seed=seed,
            dumpers=DumperPoolConfig(num_servers=3),
        )
        return run_test(config)

    def test_every_scheduled_drop_fires(self):
        result = self._run(period=100)  # 500 packets -> 5 drops
        assert result.switch_counters["dropped_by_event"] == 5

    def test_drops_fire_in_later_rounds_too(self):
        result = self._run(period=100)
        dropped = [p for p in result.trace if p.was_dropped]
        # After the first loss, the stream is in round >= 2, yet the
        # remaining scheduled losses still land.
        assert {p.iteration for p in dropped} != {1}

    def test_all_messages_complete_despite_losses(self):
        result = self._run(period=100)
        assert all(m.ok for m in result.traffic_log.all_messages)
        assert result.integrity.ok

    def test_goodput_degrades_with_loss_rate(self):
        lossless = run_scenario(nic="cx5", verb="write", num_msgs=5,
                                message_size=102400, barrier_sync=False,
                                tx_depth=2, seed=19)
        lossy = self._run(period=100)
        assert lossy.traffic_log.total_goodput_bps() < \
            0.9 * lossless.traffic_log.total_goodput_bps()

    def test_slow_recovery_nic_suffers_more(self):
        cx5 = self._run(period=100, nic="cx5")
        cx4 = self._run(period=100, nic="cx4")
        cx5_keep = cx5.traffic_log.total_goodput_bps() / 100e9
        cx4_keep = cx4.traffic_log.total_goodput_bps() / 40e9
        # Fraction of line rate retained under 1% loss: CX5 >> CX4.
        assert cx5_keep > 2 * cx4_keep

    def test_any_round_event_fires_exactly_once(self):
        result = self._run(period=100)
        dropped_psns = [p.psn for p in result.trace if p.was_dropped]
        assert len(dropped_psns) == len(set(dropped_psns))
