"""Tests for the §7 extension events: quantitative delay and reordering."""

import pytest

from conftest import run_scenario
from repro.core.config import ConfigError, DataPacketEvent
from repro.net.packet import EventType
from repro.switch.events import EventEntry


def delay_event(psn=2, delay_us=20.0, qpn=1):
    return DataPacketEvent(qpn=qpn, psn=psn, type="delay", delay_us=delay_us)


def reorder_event(psn=2, qpn=1):
    return DataPacketEvent(qpn=qpn, psn=psn, type="reorder")


class TestConfigValidation:
    def test_delay_requires_positive_delay(self):
        with pytest.raises(ConfigError):
            DataPacketEvent(qpn=1, psn=1, type="delay")

    def test_delay_us_rejected_on_other_types(self):
        with pytest.raises(ConfigError):
            DataPacketEvent(qpn=1, psn=1, type="drop", delay_us=5)

    def test_from_dict_with_delay(self):
        event = DataPacketEvent.from_dict(
            {"qpn": 1, "psn": 3, "type": "delay", "delay-us": 12.5})
        assert event.delay_us == 12.5

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            EventEntry(1, 2, 3, 4, 1, "delay")  # missing delay_ns
        with pytest.raises(ValueError):
            EventEntry(1, 2, 3, 4, 1, "drop", delay_ns=100)


class TestDelayInjection:
    def _result(self, delay_us=20.0):
        return run_scenario(nic="cx5", verb="write", num_msgs=2,
                            message_size=4096,
                            events=(delay_event(delay_us=delay_us),), seed=3)

    def test_delayed_packet_marked_in_trace(self):
        result = self._result()
        delayed = [p for p in result.trace
                   if p.event_type == EventType.DELAY]
        assert len(delayed) == 1
        assert result.switch_counters["delayed_by_event"] == 1

    def test_delay_reorders_the_stream(self):
        # 20 µs is far longer than the remaining packets' serialisation,
        # so the delayed packet arrives after its successors: the
        # responder sees OOO and NAKs, then the late original arrives.
        result = self._result()
        assert result.responder_counters["out_of_sequence"] >= 1
        assert len(result.trace.naks()) >= 1

    def test_no_packet_is_lost(self):
        result = self._result()
        assert result.integrity.ok
        assert all(m.ok for m in result.traffic_log.all_messages)
        # The delayed packet is never dropped, only late.
        assert result.switch_counters["dropped_by_event"] == 0

    def test_short_delay_is_harmless(self):
        # A delay shorter than the inter-packet gap does not reorder.
        result = run_scenario(nic="ideal", verb="write", num_msgs=2,
                              message_size=4096,
                              events=(delay_event(delay_us=0.01),), seed=3)
        assert result.responder_counters["out_of_sequence"] == 0
        assert all(m.ok for m in result.traffic_log.all_messages)


class TestReorderInjection:
    def _result(self, **kwargs):
        return run_scenario(nic="cx5", verb="write", num_msgs=2,
                            message_size=4096,
                            events=(reorder_event(),), seed=3, **kwargs)

    def test_reorder_swaps_adjacent_packets(self):
        result = self._result()
        data = result.trace.data_packets()
        # Wire order (mirror order is ingress order; the swap happens at
        # egress): mirrored stream still shows the original order, but
        # the responder observed the swap.
        assert result.switch_counters["reordered_by_event"] == 1
        assert result.responder_counters["out_of_sequence"] >= 1
        assert data, "sanity"

    def test_recovery_by_nak_and_duplicate(self):
        result = self._result()
        assert len(result.trace.naks()) >= 1
        assert all(m.ok for m in result.traffic_log.all_messages)
        assert result.integrity.ok

    def test_reorder_on_last_packet_released_by_timeout(self):
        # No successor on the connection: the safety timer releases the
        # held packet so nothing is lost.
        result = run_scenario(nic="cx5", verb="write", num_msgs=1,
                              message_size=4096,
                              events=(reorder_event(psn=4),), seed=3)
        assert all(m.ok for m in result.traffic_log.all_messages)
        assert result.switch_counters["dropped_by_event"] == 0

    def test_reorder_read_responses(self):
        result = run_scenario(nic="cx5", verb="read", num_msgs=2,
                              message_size=4096,
                              events=(reorder_event(psn=2),), seed=4)
        assert all(m.ok for m in result.traffic_log.all_messages)
        assert result.requester_counters["implied_nak_seq_err"] >= 1
