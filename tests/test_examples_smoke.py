"""Smoke tests: the shipped examples must run and say what they claim.

Only the fast examples run here (the full studies take tens of seconds
each and are exercised manually / by the benches); this guards against
API drift breaking the documentation's entry points.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExampleSmoke:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "integrity PASS" in out
        assert "NACK generation" in out
        assert "compliant" in out

    def test_retransmission_study(self):
        out = run_example("retransmission_study.py")
        assert "NACK-gen" in out
        for nic in ("cx4", "cx5", "cx6", "e810"):
            assert nic in out

    def test_interop_debugging(self):
        out = run_example("interop_debugging.py", timeout=180)
        assert "MigReq=0" in out
        assert "MigReq=1" in out
        assert "stops discarding" in out

    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 8
        for script in scripts:
            text = script.read_text()
            assert text.startswith("#!/usr/bin/env python3"), script.name
            assert '"""' in text, script.name
            assert "def main()" in text, script.name
