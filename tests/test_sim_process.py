"""Unit tests for coroutine-style processes."""

import pytest

from repro.sim.process import Process, Signal, Timeout, all_of, spawn


class TestTimeout:
    def test_process_resumes_after_timeout(self, sim):
        log = []

        def proc():
            log.append(sim.now)
            yield Timeout(250)
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [0, 250]

    def test_zero_timeout_allowed(self, sim):
        def proc():
            yield Timeout(0)
            return "done"

        handle = spawn(sim, proc())
        sim.run()
        assert handle.result == "done"

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-5)

    def test_sequential_timeouts_accumulate(self, sim):
        times = []

        def proc():
            for _ in range(3):
                yield Timeout(100)
                times.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert times == [100, 200, 300]


class TestSignal:
    def test_waiters_resume_with_value(self, sim):
        results = []

        def waiter(signal):
            value = yield signal
            results.append(value)

        signal = Signal(sim)
        spawn(sim, waiter(signal))
        spawn(sim, waiter(signal))
        sim.schedule(50, signal.fire, "payload")
        sim.run()
        assert results == ["payload", "payload"]

    def test_wait_on_already_fired_signal_completes_immediately(self, sim):
        signal = Signal(sim)
        signal.fire(42)
        results = []

        def waiter():
            value = yield signal
            results.append((sim.now, value))

        spawn(sim, waiter())
        sim.run()
        assert results == [(0, 42)]

    def test_second_fire_is_ignored(self, sim):
        signal = Signal(sim)
        signal.fire("first")
        signal.fire("second")
        assert signal.value == "first"

    def test_fired_flag(self, sim):
        signal = Signal(sim)
        assert not signal.fired
        signal.fire()
        assert signal.fired


class TestProcessComposition:
    def test_process_waits_for_subprocess_result(self, sim):
        def child():
            yield Timeout(100)
            return "child-result"

        outcomes = []

        def parent():
            value = yield spawn(sim, child())
            outcomes.append((sim.now, value))

        spawn(sim, parent())
        sim.run()
        assert outcomes == [(100, "child-result")]

    def test_completion_signal_carries_result(self, sim):
        def proc():
            yield Timeout(10)
            return 99

        handle = spawn(sim, proc())
        sim.run()
        assert handle.done
        assert handle.completion.fired
        assert handle.completion.value == 99

    def test_invalid_yield_raises(self, sim):
        def proc():
            yield "not-a-waitable"

        spawn(sim, proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_all_of_barrier(self, sim):
        def worker(delay, tag):
            yield Timeout(delay)
            return tag

        procs = [spawn(sim, worker(d, t)) for d, t in ((300, "a"), (100, "b"))]
        barrier = all_of(sim, procs)
        finished = []

        def waiter():
            results = yield barrier
            finished.append((sim.now, results))

        spawn(sim, waiter())
        sim.run()
        assert finished == [(300, ["a", "b"])]

    def test_all_of_empty_fires_immediately(self, sim):
        barrier = all_of(sim, [])
        sim.run()
        assert barrier.fired
        assert barrier.value == []
