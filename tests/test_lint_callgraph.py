"""Tests for the cross-module call graph (repro.lint.callgraph).

Small synthetic programs exercise each resolution strategy the graph
relies on: import aliases (absolute and relative), self/receiver-type
inference including chained attributes and annotated-return calls,
the bounded method-name fallback, callback-reference edges, and the
reachability/chain queries the dataflow rules are built on.
"""

import textwrap

from repro.lint.callgraph import Program, module_name_for_path


def program(files):
    return Program.from_sources(
        {path: textwrap.dedent(src) for path, src in files.items()})


def edge_pairs(prog):
    return {(e.caller, e.callee) for e in prog.iter_edges()}


# ----------------------------------------------------------------------
# Naming
# ----------------------------------------------------------------------
def test_module_name_for_path():
    assert module_name_for_path("repro/sim/engine.py") == "repro.sim.engine"
    assert module_name_for_path("repro/exec/__init__.py") == "repro.exec"
    assert module_name_for_path("top.py") == "top"


# ----------------------------------------------------------------------
# Resolution strategies
# ----------------------------------------------------------------------
def test_local_and_aliased_calls_resolve():
    prog = program({
        "repro/a.py": """
            def helper():
                return 1

            def caller():
                return helper()
        """,
        "repro/b.py": """
            from .a import helper as h

            def remote():
                return h()
        """,
    })
    pairs = edge_pairs(prog)
    assert ("repro.a.caller", "repro.a.helper") in pairs
    assert ("repro.b.remote", "repro.a.helper") in pairs


def test_function_level_relative_import_resolves():
    prog = program({
        "repro/pkg/deep.py": """
            def work():
                return 7
        """,
        "repro/pkg/user.py": """
            def go():
                from .deep import work
                return work()
        """,
    })
    assert ("repro.pkg.user.go", "repro.pkg.deep.work") in edge_pairs(prog)


def test_self_method_and_base_class_resolution():
    prog = program({
        "repro/c.py": """
            class Base:
                def shared(self):
                    return 0

            class Child(Base):
                def caller(self):
                    return self.shared()
        """,
    })
    assert ("repro.c.Child.caller", "repro.c.Base.shared") in edge_pairs(prog)


def test_constructor_assignment_infers_receiver_type():
    prog = program({
        "repro/d.py": """
            class Engine:
                def step(self):
                    return 1

            def run():
                eng = Engine()
                return eng.step()
        """,
    })
    pairs = edge_pairs(prog)
    assert ("repro.d.run", "repro.d.Engine.step") in pairs


def test_chained_attribute_receiver_resolves():
    """``self.testbed.sim.run()`` — the orchestrator pattern."""
    prog = program({
        "repro/e.py": """
            class Sim:
                def run(self):
                    return 1

            class Testbed:
                sim: Sim

            class Orchestrator:
                def __init__(self):
                    self.testbed = build()

                def go(self):
                    sim = self.testbed.sim
                    return sim.run()

            def build() -> Testbed:
                return Testbed()
        """,
    })
    assert ("repro.e.Orchestrator.go", "repro.e.Sim.run") in edge_pairs(prog)


def test_annotated_return_call_infers_type():
    prog = program({
        "repro/f.py": """
            class Thing:
                def poke(self):
                    return 1

            def make() -> Thing:
                return Thing()

            def use():
                return make().poke()
        """,
    })
    assert ("repro.f.use", "repro.f.Thing.poke") in edge_pairs(prog)


def test_name_fallback_links_small_owner_sets_only():
    files = {
        "repro/g.py": """
            class A:
                def rare(self):
                    return 1

            def use(x):
                return x.rare()
        """,
    }
    prog = program(files)
    assert ("repro.g.use", "repro.g.A.rare") in edge_pairs(prog)
    # Five owners of the same method name: above the fallback cap, no
    # edges (the over-approximation would glue the graph together).
    many = {
        "repro/h.py": "\n".join(
            [f"class C{i}:\n    def common(self):\n        return {i}\n"
             for i in range(5)]
            + ["def use(x):\n    return x.common()\n"]),
    }
    prog2 = Program.from_sources(many)
    assert not any(e.callee.endswith(".common") and not e.external
                   for e in prog2.iter_edges()
                   if e.caller == "repro.h.use")


def test_external_calls_kept_as_external_edges():
    prog = program({
        "repro/i.py": """
            import time

            def now():
                return time.time()
        """,
    })
    edges = [e for e in prog.iter_edges() if e.caller == "repro.i.now"]
    assert [(e.callee, e.external) for e in edges] == [("time.time", True)]


def test_callback_reference_argument_creates_edge():
    """A function handed to ``sim.schedule`` is reachable through it."""
    prog = program({
        "repro/j.py": """
            class Sim:
                def schedule(self, at, fn):
                    self.fn = fn

            def on_fire():
                return 1

            def arm():
                sim = Sim()
                sim.schedule(10, on_fire)
        """,
    })
    pairs = edge_pairs(prog)
    assert ("repro.j.arm", "repro.j.on_fire") in pairs
    assert "repro.j.on_fire" in prog.reachable_from(["repro.j.arm"])


def test_nested_def_containment_edge():
    prog = program({
        "repro/k.py": """
            def outer():
                def inner():
                    return 2
                return inner
        """,
    })
    assert ("repro.k.outer", "repro.k.outer.inner") in edge_pairs(prog)


def test_module_scope_calls_attributed_to_pseudo_function():
    prog = program({
        "repro/l.py": """
            def setup():
                return 3

            VALUE = setup()
        """,
    })
    assert ("repro.l.<module>", "repro.l.setup") in edge_pairs(prog)


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
CHAIN_FILES = {
    "repro/sim/a.py": """
        from ..util.b import step1

        def entry():
            return step1()
    """,
    "repro/util/b.py": """
        from .c import step2

        def step1():
            return step2()
    """,
    "repro/util/c.py": """
        import time

        def step2():
            return time.time()
    """,
}


def test_reachable_from_and_functions_reaching():
    prog = program(CHAIN_FILES)
    reach = prog.reachable_from(["repro.sim.a.entry"])
    assert {"repro.sim.a.entry", "repro.util.b.step1",
            "repro.util.c.step2"} <= reach
    reaching = prog.functions_reaching(["repro.util.c.step2"])
    assert "repro.sim.a.entry" in reaching


def test_call_chain_shortest_path():
    prog = program(CHAIN_FILES)
    chain = prog.call_chain("repro.sim.a.entry", "repro.util.c.step2")
    assert chain == ["repro.sim.a.entry", "repro.util.b.step1",
                     "repro.util.c.step2"]
    assert prog.call_chain("repro.util.c.step2", "repro.sim.a.entry") == []


# ----------------------------------------------------------------------
# Rendering (lint --graph)
# ----------------------------------------------------------------------
def test_to_dict_summary_and_text_render():
    prog = program(CHAIN_FILES)
    doc = prog.to_dict()
    assert doc["summary"]["modules"] == 3
    assert doc["summary"]["functions"] == 3
    assert any(e["caller"] == "repro.util.b.step1" for e in doc["edges"])
    text = prog.render_text()
    assert "repro.sim.a.entry" in text
    assert "~> time.time  [external]" in text
    assert "callgraph:" in text.splitlines()[-1]
