"""Fixture tests for the whole-program dataflow rules.

Each FLOW/RACE/UNIT family gets at least one true positive and one
must-not-flag case (the issue's acceptance bar), driven through
:func:`repro.lint.dataflow.run_program_rules` on synthetic multi-module
programs. The seeded-transitive-violation acceptance fixture — a
wall-clock read two calls below an engine callback — lives in
``test_flow001_catches_seeded_transitive_violation``. A perf test pins
graph construction plus all four analyses over ``src/repro`` under the
10-second CI budget.
"""

import textwrap
import time

from repro.lint.callgraph import Program
from repro.lint.cli import default_root, lint_tree
from repro.lint.dataflow import run_program_rules, worker_root_qnames
from repro.lint.findings import FileStats


def analyze(files, select=None, stats=None):
    prog = Program.from_sources(
        {path: textwrap.dedent(src) for path, src in files.items()})
    return run_program_rules(prog, select=select, stats=stats)


def codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# FLOW001 — transitive wall-clock taint
# ----------------------------------------------------------------------
def test_flow001_catches_seeded_transitive_violation():
    """The acceptance fixture: wall-clock two calls below an engine
    callback, through a helper module outside the DET001 dirs."""
    findings = analyze({
        "repro/sim/model.py": """
            from ..util.timing import stamp

            def on_packet(sim, pkt):
                pkt.note = stamp()
        """,
        "repro/util/timing.py": """
            from .clock import read_clock

            def stamp():
                return read_clock()
        """,
        "repro/util/clock.py": """
            import time

            def read_clock():
                return time.time()
        """,
    }, select={"FLOW001"})
    assert codes(findings) == ["FLOW001"]
    finding = findings[0]
    assert finding.path == "repro/sim/model.py"
    # Flagged at the scope-exit call site, chain in the message.
    assert "repro.util.timing.stamp" in finding.message
    assert "<wall-clock>" in finding.message


def test_flow001_clean_helper_chain_not_flagged():
    findings = analyze({
        "repro/sim/model.py": """
            from ..util.mathy import double

            def on_packet(sim, pkt):
                pkt.size = double(pkt.size)
        """,
        "repro/util/mathy.py": """
            def double(x):
                return 2 * x
        """,
    }, select={"FLOW001"})
    assert findings == []


def test_flow001_telemetry_wall_usage_sanctioned():
    findings = analyze({
        "repro/sim/model.py": """
            from ..telemetry.spans import annotate

            def on_packet(sim, pkt):
                annotate(pkt)
        """,
        "repro/telemetry/spans.py": """
            import time

            def annotate(pkt):
                pkt.wall_ns = time.perf_counter_ns()
        """,
    }, select={"FLOW001"})
    assert findings == []


def test_flow001_value_taint_into_sim_time_field():
    findings = analyze({
        "repro/util/clock.py": """
            import time

            def read_ms():
                return time.time() * 1000
        """,
        "repro/rdma/qp.py": """
            from ..util.clock import read_ms

            def touch(state):
                state.last_ack_ns = read_ms()
        """,
    }, select={"FLOW001"})
    assert any(f.path == "repro/rdma/qp.py" and
               "last_ack_ns" in f.message for f in findings)


def test_flow001_wall_prefixed_fields_exempt():
    findings = analyze({
        "repro/util/clock.py": """
            import time

            def read_ns():
                return time.perf_counter_ns()
        """,
        "repro/report.py": """
            from .util.clock import read_ns

            def fill(record):
                record.wall_elapsed_ns = read_ns()
        """,
    }, select={"FLOW001"})
    assert all("wall_elapsed_ns" not in f.message for f in findings)


def test_flow001_taint_into_fingerprint_sink():
    findings = analyze({
        "repro/util/clock.py": """
            import time

            def read():
                return time.time()
        """,
        "repro/store/fp.py": """
            from ..util.clock import read

            def config_fingerprint(payload):
                return hash(str(payload))

            def save(config):
                return config_fingerprint({"at": read()})
        """,
    }, select={"FLOW001"})
    assert any("fingerprint" in f.message for f in findings)


# ----------------------------------------------------------------------
# FLOW002 — RNG provenance
# ----------------------------------------------------------------------
def test_flow002_orphan_random_construction_flagged():
    findings = analyze({
        "repro/core/model.py": """
            import random

            def jitter():
                rng = random.Random()
                return rng.random()
        """,
    }, select={"FLOW002"})
    assert codes(findings) == ["FLOW002"]
    assert "provenance" in findings[0].message


def test_flow002_simrandom_implementation_exempt():
    findings = analyze({
        "repro/sim/rng.py": """
            import random

            class SimRandom:
                def __init__(self, seed, namespace="root"):
                    self._rng = random.Random(f"{seed}:{namespace}")

                def setstate(self, state):
                    self._rng.setstate(state)
        """,
    }, select={"FLOW002"})
    assert findings == []


def test_flow002_literal_seeded_simrandom_fork_flagged():
    findings = analyze({
        "repro/sim/rng.py": """
            class SimRandom:
                def __init__(self, seed):
                    self.seed = seed
        """,
        "repro/core/setup.py": """
            from ..sim.rng import SimRandom

            def build(config):
                good = SimRandom(config.seed)
                bad = SimRandom(42)
                return good, bad
        """,
    }, select={"FLOW002"})
    assert len(findings) == 1
    assert "42" in findings[0].message


def test_flow002_reseed_on_worker_path_flagged():
    findings = analyze({
        "repro/exec/tasks.py": """
            from ..core.work import run_one

            def run_config_task(payload):
                return run_one(payload)
        """,
        "repro/core/work.py": """
            def run_one(payload):
                rng = payload["rng"]
                rng.seed(7)
                return rng
        """,
    }, select={"FLOW002"})
    assert codes(findings) == ["FLOW002"]
    assert "reseeds" in findings[0].message


def test_flow002_reseed_outside_worker_path_not_flagged():
    findings = analyze({
        "repro/core/resume.py": """
            def load_state(rng, state):
                rng.setstate(state)
        """,
    }, select={"FLOW002"})
    assert findings == []


# ----------------------------------------------------------------------
# RACE001 — spawn-safety races
# ----------------------------------------------------------------------
RACE_TASKS = """
    from ..core.work import work

    def run_config_task(payload):
        return work(payload)
"""


def test_race001_global_write_on_worker_path_flagged():
    findings = analyze({
        "repro/exec/tasks.py": RACE_TASKS,
        "repro/core/work.py": """
            _CACHE = {}

            def work(payload):
                _CACHE[payload["k"]] = payload
                return payload
        """,
    }, select={"RACE001"})
    assert codes(findings) == ["RACE001"]
    assert "_CACHE" in findings[0].message


def test_race001_global_rebind_via_global_stmt_flagged():
    findings = analyze({
        "repro/exec/tasks.py": RACE_TASKS,
        "repro/core/work.py": """
            _COUNT = 0

            def work(payload):
                global _COUNT
                _COUNT += 1
                return payload
        """,
    }, select={"RACE001"})
    assert codes(findings) == ["RACE001"]


def test_race001_local_shadow_not_flagged():
    findings = analyze({
        "repro/exec/tasks.py": RACE_TASKS,
        "repro/core/work.py": """
            _CACHE = {}

            def work(payload):
                cache = {}
                cache[payload["k"]] = payload
                items = dict(_CACHE)
                return items
        """,
    }, select={"RACE001"})
    assert findings == []


def test_race001_write_off_worker_path_not_flagged():
    findings = analyze({
        "repro/core/work.py": """
            _CACHE = {}

            def parent_only(payload):
                _CACHE[payload["k"]] = payload
        """,
    }, select={"RACE001"})
    assert findings == []


def test_race001_parallel_runner_task_fn_is_a_root():
    files = {
        "repro/driver.py": """
            from repro.exec import ParallelRunner

            def work(payload):
                return payload

            def go(payloads):
                with ParallelRunner(work, workers=2) as runner:
                    return runner.map(payloads)
        """,
    }
    prog = Program.from_sources(
        {p: textwrap.dedent(s) for p, s in files.items()})
    assert "repro.driver.work" in worker_root_qnames(prog)


def test_race001_merge_outside_declared_points_flagged():
    findings = analyze({
        "repro/core/extra.py": """
            def sneaky_fold(cov, snapshots):
                for snap in snapshots:
                    cov.merge_snapshot(snap)
        """,
    }, select={"RACE001"})
    assert codes(findings) == ["RACE001"]
    assert "merge" in findings[0].message


def test_race001_merge_at_declared_point_not_flagged():
    findings = analyze({
        "repro/core/orchestrator.py": """
            def run_test(cov, snapshots):
                for snap in snapshots:
                    cov.merge_snapshot(snap)
        """,
        "repro/coverage/map.py": """
            class CoverageMap:
                def merge(self, other):
                    return other
        """,
    }, select={"RACE001"})
    assert findings == []


# ----------------------------------------------------------------------
# UNIT001 — unit consistency
# ----------------------------------------------------------------------
def test_unit001_mixed_addition_flagged():
    findings = analyze({
        "repro/sim/delay.py": """
            def total(delay_ns, gap_us):
                return delay_ns + gap_us
        """,
    }, select={"UNIT001"})
    assert codes(findings) == ["UNIT001"]
    assert "ns" in findings[0].message and "us" in findings[0].message


def test_unit001_mixed_comparison_flagged():
    findings = analyze({
        "repro/sim/delay.py": """
            def late(deadline_ns, elapsed_ms):
                return elapsed_ms > deadline_ns
        """,
    }, select={"UNIT001"})
    assert codes(findings) == ["UNIT001"]


def test_unit001_cross_dimension_mentions_dimensions():
    findings = analyze({
        "repro/net/rate.py": """
            def weird(size_bytes, rate_gbps):
                return size_bytes + rate_gbps
        """,
    }, select={"UNIT001"})
    assert len(findings) == 1
    assert "different dimensions" in findings[0].message


def test_unit001_conversion_via_multiplication_not_flagged():
    findings = analyze({
        "repro/sim/delay.py": """
            def total(delay_ns, gap_us):
                return delay_ns + gap_us * 1000
        """,
    }, select={"UNIT001"})
    assert findings == []


def test_unit001_same_unit_not_flagged():
    findings = analyze({
        "repro/sim/delay.py": """
            def total(a_ns, b_ns):
                if a_ns > b_ns:
                    return a_ns + b_ns
                return b_ns - a_ns
        """,
    }, select={"UNIT001"})
    assert findings == []


def test_unit001_call_argument_mismatch_across_modules():
    findings = analyze({
        "repro/sim/sched.py": """
            def schedule_after(delay_ns):
                return delay_ns
        """,
        "repro/rdma/qp.py": """
            from ..sim.sched import schedule_after

            def arm(timeout_us):
                return schedule_after(timeout_us)
        """,
    }, select={"UNIT001"})
    assert len(findings) == 1
    assert findings[0].path == "repro/rdma/qp.py"
    assert "delay_ns" in findings[0].message


def test_unit001_keyword_argument_mismatch():
    findings = analyze({
        "repro/sim/sched.py": """
            def schedule_after(delay_ns=0):
                return delay_ns
        """,
        "repro/rdma/qp.py": """
            from ..sim.sched import schedule_after

            def arm(timeout_us):
                return schedule_after(delay_ns=timeout_us)
        """,
    }, select={"UNIT001"})
    assert len(findings) == 1


def test_unit001_matching_argument_not_flagged():
    findings = analyze({
        "repro/sim/sched.py": """
            def schedule_after(delay_ns):
                return delay_ns
        """,
        "repro/rdma/qp.py": """
            from ..sim.sched import schedule_after

            def arm(timeout_ns):
                return schedule_after(timeout_ns)
        """,
    }, select={"UNIT001"})
    assert findings == []


# ----------------------------------------------------------------------
# Framework behaviour
# ----------------------------------------------------------------------
def test_program_rule_findings_honour_inline_suppressions():
    stats = FileStats()
    findings = analyze({
        "repro/sim/delay.py": """
            def total(delay_ns, gap_us):
                return delay_ns + gap_us  # repro-lint: ignore[UNIT001]
        """,
    }, select={"UNIT001"}, stats=stats)
    assert findings == []
    assert stats.suppressed == 1


def test_program_rules_respect_select():
    files = {
        "repro/sim/delay.py": """
            def total(delay_ns, gap_us):
                return delay_ns + gap_us
        """,
    }
    assert analyze(files, select={"FLOW001"}) == []
    assert codes(analyze(files, select={"UNIT001"})) == ["UNIT001"]


# ----------------------------------------------------------------------
# Perf: the CI budget
# ----------------------------------------------------------------------
def test_whole_program_analysis_under_ci_budget():
    """Graph + all four analyses over src/repro in well under 10s."""
    started = time.perf_counter()
    findings, _stats = lint_tree(default_root())
    elapsed = time.perf_counter() - started
    assert elapsed < 10.0, f"whole-program lint took {elapsed:.1f}s"
    # And the repo itself stays clean (everything fixed or suppressed
    # with a reason at the site).
    assert [f for f in findings
            if f.code.startswith(("FLOW", "RACE", "UNIT"))] == []
