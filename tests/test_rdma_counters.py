"""Unit tests for NIC counters and the stuck-counter bug model."""

import pytest

from repro.rdma.counters import CANONICAL_COUNTERS, NicCounters
from repro.rdma.profiles import CX4_LX, E810


class TestBasicCounting:
    def test_all_counters_start_at_zero(self):
        counters = NicCounters()
        assert all(v == 0 for v in counters.snapshot().values())

    def test_incr_default_one(self):
        counters = NicCounters()
        counters.incr("tx_packets")
        assert counters["tx_packets"] == 1

    def test_incr_amount(self):
        counters = NicCounters()
        counters.incr("tx_bytes", 1500)
        counters.incr("tx_bytes", 500)
        assert counters["tx_bytes"] == 2000

    def test_unknown_counter_rejected(self):
        counters = NicCounters()
        with pytest.raises(KeyError):
            counters.incr("made_up")
        with pytest.raises(KeyError):
            counters["made_up"]

    def test_negative_increment_rejected(self):
        counters = NicCounters()
        with pytest.raises(ValueError):
            counters.incr("tx_packets", -1)

    def test_get_with_default(self):
        counters = NicCounters()
        assert counters.get("tx_packets") == 0
        assert counters.get("missing", 42) == 42

    def test_delta(self):
        counters = NicCounters()
        counters.incr("rx_packets", 5)
        before = counters.snapshot()
        counters.incr("rx_packets", 3)
        assert counters.delta(before)["rx_packets"] == 3


class TestStuckCounters:
    def test_stuck_counter_never_increments(self):
        counters = NicCounters(stuck=frozenset({"cnp_sent"}))
        counters.incr("cnp_sent", 10)
        assert counters["cnp_sent"] == 0

    def test_suppressed_tracks_ground_truth(self):
        counters = NicCounters(stuck=frozenset({"cnp_sent"}))
        counters.incr("cnp_sent", 10)
        assert counters.suppressed("cnp_sent") == 10

    def test_other_counters_unaffected(self):
        counters = NicCounters(stuck=frozenset({"cnp_sent"}))
        counters.incr("cnp_handled", 2)
        assert counters["cnp_handled"] == 2

    def test_unknown_stuck_counter_rejected(self):
        with pytest.raises(ValueError):
            NicCounters(stuck=frozenset({"bogus"}))

    def test_e810_profile_sticks_cnp_sent(self):
        # The §6.2.4 cnpSent bug as configured in the vendor profile.
        assert "cnp_sent" in E810.stuck_counters

    def test_cx4_profile_sticks_implied_nak(self):
        assert "implied_nak_seq_err" in CX4_LX.stuck_counters


class TestVendorNaming:
    def test_vendor_snapshot_renames(self):
        counters = NicCounters(vendor_names={"cnp_sent": "np_cnp_sent"})
        counters.incr("cnp_sent")
        snap = counters.vendor_snapshot()
        assert snap["np_cnp_sent"] == 1
        assert "cnp_sent" not in snap

    def test_unmapped_counters_keep_canonical_name(self):
        counters = NicCounters(vendor_names={"cnp_sent": "np_cnp_sent"})
        assert "tx_packets" in counters.vendor_snapshot()

    def test_vendor_name_lookup(self):
        counters = NicCounters(vendor_names={"cnp_sent": "cnpSent"})
        assert counters.vendor_name("cnp_sent") == "cnpSent"
        assert counters.vendor_name("tx_packets") == "tx_packets"

    def test_nvidia_and_intel_names_differ(self):
        assert CX4_LX.counter_names["cnp_sent"] == "np_cnp_sent"
        assert E810.counter_names["cnp_sent"] == "cnpSent"


class TestCatalogue:
    def test_catalogue_covers_paper_counters(self):
        # §4: sent/received, sequence errors, OOO, timeouts, iCRC,
        # discards, CNPs sent/handled.
        for name in ("tx_packets", "rx_packets", "packet_seq_err",
                     "out_of_sequence", "local_ack_timeout_err",
                     "rx_icrc_errors", "rx_discards_phy",
                     "cnp_sent", "cnp_handled", "implied_nak_seq_err"):
            assert name in CANONICAL_COUNTERS
