"""End-to-end PSN wraparound tests (24-bit sequence space)."""

from repro import quick_config
from repro.core.testbed import build_testbed
from repro.rdma.verbs import CompletionQueue, Verb, WcStatus, WorkRequest
from repro.switch.itertrack import IterTracker


def pair_near_wrap(initial_psn, seed=3, nic="ideal"):
    """A connected QP pair whose requester stream starts near the wrap."""
    testbed = build_testbed(quick_config(nic=nic, seed=seed))
    req_cq, resp_cq = CompletionQueue(), CompletionQueue()
    req = testbed.requester.nic.create_qp(req_cq, testbed.requester.ips[0])
    resp = testbed.responder.nic.create_qp(resp_cq, testbed.responder.ips[0])
    # Force the requester's stream to start just below 2^24.
    req.initial_psn = initial_psn
    req.next_psn = initial_psn
    req.snd_una = initial_psn
    req.connect(testbed.responder.ips[0], resp.qp_num, resp.initial_psn)
    resp.connect(testbed.requester.ips[0], req.qp_num, initial_psn)
    return testbed, req, resp, req_cq


class TestWriteAcrossWrap:
    def test_message_spanning_the_wrap_completes(self):
        # 8-packet message starting at 0xFFFFFC crosses into 0x000003.
        testbed, req, resp, cq = pair_near_wrap(0xFFFFFC)
        req.post_send(WorkRequest(verb=Verb.WRITE, length=8 * 1024))
        testbed.sim.run()
        wcs = cq.poll()
        assert wcs and wcs[0].status is WcStatus.SUCCESS
        assert req.next_psn == 0x000004
        assert resp.epsn == 0x000004

    def test_multiple_messages_across_wrap(self):
        testbed, req, resp, cq = pair_near_wrap(0xFFFFF0)
        for _ in range(5):
            req.post_send(WorkRequest(verb=Verb.WRITE, length=8 * 1024))
        testbed.sim.run()
        assert len(cq.poll(16)) == 5
        assert resp.epsn == (0xFFFFF0 + 40) & 0xFFFFFF

    def test_read_across_wrap(self):
        testbed, req, resp, cq = pair_near_wrap(0xFFFFFE)
        req.post_send(WorkRequest(verb=Verb.READ, length=4096))
        testbed.sim.run()
        assert cq.poll()[0].status is WcStatus.SUCCESS


class TestIterTrackerAcrossWrap:
    def test_forward_wrap_is_not_a_retransmission(self):
        tracker = IterTracker()
        for offset in range(8):
            psn = (0xFFFFFC + offset) & 0xFFFFFF
            assert tracker.update(1, 2, 3, psn) == 1

    def test_retransmission_across_wrap_detected(self):
        tracker = IterTracker()
        for offset in range(6):
            tracker.update(1, 2, 3, (0xFFFFFC + offset) & 0xFFFFFF)
        # Go back to a pre-wrap PSN: that's a new round.
        assert tracker.update(1, 2, 3, 0xFFFFFD) == 2
