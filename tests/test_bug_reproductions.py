"""Integration tests reproducing every §6.2/§6.3 bug and hidden behaviour.

Each test is a miniature version of the paper experiment that exposed
the bug, asserting both that the affected NIC shows it and that the
unaffected NICs do not (Table 2's NIC column).
"""

import pytest

from conftest import run_scenario
from repro.core.config import (
    DataPacketEvent,
    DumperPoolConfig,
    EtsConfig,
    EtsQueueSpec,
    HostConfig,
    PeriodicEcnIntent,
    RoceParameters,
    TestConfig,
    TrafficConfig,
)
from repro.core.analyzers import per_qp_goodput_gbps, split_mct
from repro.core.orchestrator import Orchestrator, run_test
from repro.switch.events import RewriteRule


def _ets_result(nic, multi_queue, mark_qp0, seed=5, messages=8):
    """§6.2.1 topology: two QPs, 8x256KB writes, DCQCN on."""
    if multi_queue:
        ets = EtsConfig(queues=(EtsQueueSpec(0, 50.0), EtsQueueSpec(1, 50.0)),
                        qp_to_queue={1: 0, 2: 1})
    else:
        ets = EtsConfig(queues=(EtsQueueSpec(0, 100.0),),
                        qp_to_queue={1: 0, 2: 0})
    traffic = TrafficConfig(
        num_connections=2, rdma_verb="write", num_msgs_per_qp=messages,
        message_size=256 * 1024, mtu=1024, barrier_sync=False, tx_depth=2,
        periodic_events=(PeriodicEcnIntent(qpn=1, period=50),) if mark_qp0 else (),
        ets=ets,
    )
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",)),
        traffic=traffic, seed=seed, dumpers=DumperPoolConfig(num_servers=3),
    )
    return run_test(config)


class TestEtsWorkConservation:
    """§6.2.1: non-work-conserving ETS on CX6 Dx (Fig. 10)."""

    def test_vanilla_multi_queue_shares_equally(self):
        result = _ets_result("cx6", multi_queue=True, mark_qp0=False)
        goodput = per_qp_goodput_gbps(result.traffic_log)
        assert goodput[1] == pytest.approx(goodput[2], rel=0.15)
        assert goodput[1] > 30  # roughly half of 100 Gbps

    def test_cx6_queue_cannot_take_spare_bandwidth(self):
        # The bug: QP1 stays near its 50% guarantee although QP0 is
        # throttled to almost nothing by DCQCN.
        result = _ets_result("cx6", multi_queue=True, mark_qp0=True)
        goodput = per_qp_goodput_gbps(result.traffic_log)
        assert goodput[1] < 10
        assert goodput[2] < 60  # stuck at the guarantee

    def test_cx5_queue_takes_spare_bandwidth(self):
        # Spec-compliant NIC in the identical scenario.
        result = _ets_result("cx5", multi_queue=True, mark_qp0=True)
        goodput = per_qp_goodput_gbps(result.traffic_log)
        assert goodput[1] < 10
        assert goodput[2] > 70  # work conservation

    def test_cx6_single_queue_not_affected(self):
        # Third Fig. 10 setting: same ETS queue -> QP1 expands fine.
        result = _ets_result("cx6", multi_queue=False, mark_qp0=True)
        goodput = per_qp_goodput_gbps(result.traffic_log)
        assert goodput[2] > 70

    def test_ablation_cx6_with_fixed_scheduler(self):
        # DESIGN.md ablation: CX6 profile with work conservation forced
        # on behaves like CX5 — the profile flag is the whole bug.
        from repro.rdma.profiles import CX6_DX

        assert not CX6_DX.ets_work_conserving
        fixed = CX6_DX.with_overrides(ets_work_conserving=True)
        assert fixed.ets_work_conserving


def _noisy_result(injected_flows, nic="cx4", total=36, seed=11):
    """§6.2.2 topology: 36 Read flows, drop 5th packet on the first i."""
    events = tuple(DataPacketEvent(qpn=q + 1, psn=5, type="drop")
                   for q in range(injected_flows))
    traffic = TrafficConfig(num_connections=total, rdma_verb="read",
                            num_msgs_per_qp=4, message_size=20480, mtu=1024,
                            barrier_sync=True, data_pkt_events=events)
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",)),
        traffic=traffic, seed=seed, dumpers=DumperPoolConfig(num_servers=3),
        max_duration_ns=60_000_000_000,
    )
    return run_test(config)


class TestNoisyNeighbor:
    """§6.2.2: CX4 Lx pipeline stall under concurrent Read losses (Fig. 11)."""

    def test_innocent_flows_fine_below_threshold(self):
        result = _noisy_result(8)
        parts = split_mct(result.traffic_log, list(range(1, 9)))
        assert parts["others"].max_ns < 1_000_000  # < 1 ms
        assert result.requester_counters["rx_discards_phy"] == 0

    def test_innocent_flows_collapse_at_threshold(self):
        result = _noisy_result(12)
        parts = split_mct(result.traffic_log, list(range(1, 13)))
        # Innocent flows hit a full retransmission timeout (~67 ms).
        assert parts["others"].max_ns > 10_000_000
        assert result.requester_counters["rx_discards_phy"] > 100

    def test_discards_counted_at_the_requester(self):
        result = _noisy_result(16)
        assert result.requester_counters["rx_discards_phy"] > 100
        assert result.responder_counters["rx_discards_phy"] == 0

    def test_cx5_has_no_noisy_neighbor(self):
        result = _noisy_result(16, nic="cx5")
        parts = split_mct(result.traffic_log, list(range(1, 17)))
        assert parts["others"].max_ns < 1_000_000
        assert result.requester_counters["rx_discards_phy"] == 0


def _interop_result(req_nic, resp_nic, qps, fix=False, seed=21):
    """§6.2.3 topology: Send traffic, many QPs starting at once."""
    traffic = TrafficConfig(num_connections=qps, rdma_verb="send",
                            num_msgs_per_qp=3, message_size=102400, mtu=1024,
                            barrier_sync=True)
    config = TestConfig(
        requester=HostConfig(nic_type=req_nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=resp_nic, ip_list=("10.0.0.2/24",)),
        traffic=traffic, seed=seed, dumpers=DumperPoolConfig(num_servers=3),
        max_duration_ns=120_000_000_000,
    )
    rules = [RewriteRule(field_name="migreq", value=1)] if fix else None
    return Orchestrator(config, rewrite_rules=rules).run()


class TestInteroperability:
    """§6.2.3: E810 -> CX5 MigReq slow-path discards."""

    def test_e810_sends_migreq_zero(self):
        result = _interop_result("e810", "cx5", qps=2)
        data = result.trace.data_packets()
        assert data and all(not p.record.bth.migreq for p in data)

    def test_cx5_sends_migreq_one(self):
        result = _interop_result("cx5", "cx5", qps=2)
        data = result.trace.data_packets()
        assert data and all(p.record.bth.migreq for p in data)

    def test_few_qps_are_fine(self):
        result = _interop_result("e810", "cx5", qps=8)
        assert result.responder_counters["rx_discards_phy"] == 0
        assert all(m.ok for m in result.traffic_log.all_messages)

    def test_sixteen_qps_trigger_discards(self):
        result = _interop_result("e810", "cx5", qps=16)
        assert result.responder_counters["rx_discards_phy"] > 0
        slow = [m for m in result.traffic_log.all_messages
                if m.ok and m.completion_time_ns > 1_000_000]
        # Timeouts push affected messages' MCT out by orders of magnitude.
        assert slow
        assert all(m.msg_index == 0 for m in slow), \
            "drops concentrate on first messages"

    def test_cx5_to_cx5_control_case_clean(self):
        result = _interop_result("cx5", "cx5", qps=16)
        assert result.responder_counters["rx_discards_phy"] == 0

    def test_migreq_rewrite_action_fixes_it(self):
        # §6.2.3: the Lumina extension rewriting MigReq=1 confirmed the
        # root cause — with it, CX5 stops discarding.
        result = _interop_result("e810", "cx5", qps=16, fix=True)
        assert result.responder_counters["rx_discards_phy"] == 0
        assert all(m.ok for m in result.traffic_log.all_messages)


class TestAdaptiveRetransmission:
    """§6.3: adaptive retransmission breaks the IB timeout contract."""

    def _gaps_ms(self, nic, adaptive, seed=41):
        events = tuple(DataPacketEvent(qpn=1, psn=10, type="drop", iter=i)
                       for i in range(1, 8))
        result = run_scenario(nic=nic, verb="write", num_msgs=1,
                              message_size=10240, events=events,
                              timeout_cfg=14, retry_cnt=7, adaptive=adaptive,
                              seed=seed, max_duration_ms=5_000)
        meta = result.metadata[0]
        conn = (meta.requester_ip, meta.responder_ip, meta.responder_qpn)
        last_psn = (meta.requester_ipsn + 9) & 0xFFFFFF
        appearances = [p for p in result.trace.data_packets(conn)
                       if p.psn == last_psn]
        return [(b.timestamp_ns - a.timestamp_ns) / 1e6
                for a, b in zip(appearances, appearances[1:])]

    def test_spec_mode_uses_constant_timeout(self):
        gaps = self._gaps_ms("cx6", adaptive=False)
        assert len(gaps) == 7
        assert all(abs(g - 67.1) < 1.0 for g in gaps)

    def test_adaptive_mode_follows_measured_ladder(self):
        gaps = self._gaps_ms("cx6", adaptive=True)
        expected = [5.6, 4.2, 8.4, 16.8, 25.2, 67.1, 134.2]
        assert len(gaps) == 7
        for got, want in zip(gaps, expected):
            assert abs(got - want) < max(1.0, want * 0.05)

    def test_first_adaptive_timeouts_violate_minimum(self):
        # The paper's finding: actual timeouts are *smaller* than the
        # configured minimum (67.1 ms) for early retries.
        gaps = self._gaps_ms("cx6", adaptive=True)
        assert gaps[0] < 67.1
        assert gaps[1] < 67.1

    def test_e810_ignores_adaptive_flag(self):
        # E810 has no adaptive retransmission: flag must be a no-op.
        gaps = self._gaps_ms("e810", adaptive=True)
        assert all(abs(g - 67.1) < 1.0 for g in gaps)

    def test_adaptive_retries_beyond_configured_count(self):
        # retry_cnt=7 but adaptive mode retries 8-13 times (§6.3).
        events = tuple(DataPacketEvent(qpn=1, psn=10, type="drop", iter=i)
                       for i in range(1, 15))
        spec = run_scenario(nic="cx6", verb="write", num_msgs=1,
                            message_size=10240, events=events,
                            timeout_cfg=10, retry_cnt=7, adaptive=False,
                            seed=42, max_duration_ms=5_000)
        adaptive = run_scenario(nic="cx6", verb="write", num_msgs=1,
                                message_size=10240, events=events,
                                timeout_cfg=10, retry_cnt=7, adaptive=True,
                                seed=42, max_duration_ms=5_000)
        spec_attempts = spec.requester_counters["local_ack_timeout_err"]
        adaptive_attempts = adaptive.requester_counters["local_ack_timeout_err"]
        assert spec_attempts == 8          # 7 retries + the failing 8th
        assert 9 <= adaptive_attempts <= 14
