"""Unit tests for protocol headers: pack/unpack fidelity and semantics."""

import pytest

from repro.net.addressing import (
    int_to_ip,
    int_to_mac,
    ip_to_int,
    mac_to_int,
    parse_cidr,
    ROCEV2_UDP_PORT,
)
from repro.net.headers import (
    AckExtendedHeader,
    AethSyndrome,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    RdmaExtendedHeader,
    UdpHeader,
    ETH_HEADER_LEN,
    IPV4_HEADER_LEN,
    UDP_HEADER_LEN,
    BTH_LEN,
    RETH_LEN,
    AETH_LEN,
    ECN_CE,
    ECN_ECT0,
)


class TestAddressing:
    def test_mac_roundtrip(self):
        assert int_to_mac(mac_to_int("0a:1b:2c:3d:4e:5f")) == "0a:1b:2c:3d:4e:5f"

    def test_mac_invalid(self):
        with pytest.raises(ValueError):
            mac_to_int("not-a-mac")
        with pytest.raises(ValueError):
            mac_to_int("00:00:00:00:00")
        with pytest.raises(ValueError):
            int_to_mac(1 << 48)

    def test_ip_roundtrip(self):
        assert int_to_ip(ip_to_int("10.0.0.2")) == "10.0.0.2"
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_ip_invalid(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")
        with pytest.raises(ValueError):
            int_to_ip(-1)

    def test_parse_cidr(self):
        ip, prefix = parse_cidr("10.0.0.2/24")
        assert ip == ip_to_int("10.0.0.2")
        assert prefix == 24

    def test_parse_cidr_bare_address_is_host_route(self):
        assert parse_cidr("192.168.1.1") == (ip_to_int("192.168.1.1"), 32)

    def test_parse_cidr_invalid_prefix(self):
        with pytest.raises(ValueError):
            parse_cidr("10.0.0.1/33")

    def test_rocev2_port(self):
        assert ROCEV2_UDP_PORT == 4791


class TestEthernetHeader:
    def test_pack_length(self):
        assert len(EthernetHeader().pack()) == ETH_HEADER_LEN

    def test_roundtrip(self):
        header = EthernetHeader(dst_mac=0x0A1B2C3D4E5F, src_mac=0x020000000001,
                                ethertype=0x0800)
        assert EthernetHeader.unpack(header.pack()) == header

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 10)

    def test_copy_is_independent(self):
        header = EthernetHeader(dst_mac=1, src_mac=2)
        clone = header.copy()
        clone.dst_mac = 99
        assert header.dst_mac == 1


class TestIpv4Header:
    def test_pack_length(self):
        assert len(Ipv4Header().pack()) == IPV4_HEADER_LEN

    def test_roundtrip_all_fields(self):
        header = Ipv4Header(src_ip=ip_to_int("10.0.0.1"),
                            dst_ip=ip_to_int("10.0.0.2"),
                            total_length=1024, ttl=7, dscp=46, ecn=ECN_CE,
                            identification=0x1234)
        assert Ipv4Header.unpack(header.pack()) == header

    def test_default_ecn_is_ect0(self):
        assert Ipv4Header().ecn == ECN_ECT0

    def test_unpack_rejects_non_ipv4(self):
        data = bytearray(Ipv4Header().pack())
        data[0] = 0x65  # version 6
        with pytest.raises(ValueError):
            Ipv4Header.unpack(bytes(data))

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            Ipv4Header.unpack(b"\x45" * 10)


class TestUdpHeader:
    def test_pack_length(self):
        assert len(UdpHeader().pack()) == UDP_HEADER_LEN

    def test_roundtrip(self):
        header = UdpHeader(src_port=55555, dst_port=4791, length=1052)
        assert UdpHeader.unpack(header.pack()) == header

    def test_default_port_is_rocev2(self):
        assert UdpHeader().dst_port == 4791


class TestBth:
    def test_pack_length(self):
        assert len(BaseTransportHeader().pack()) == BTH_LEN

    def test_roundtrip_all_fields(self):
        header = BaseTransportHeader(
            opcode=Opcode.RDMA_WRITE_MIDDLE, solicited=True, migreq=False,
            pad_count=3, pkey=0xABCD, dest_qp=0xABCDEF, ack_request=True,
            psn=0x123456, becn=True,
        )
        assert BaseTransportHeader.unpack(header.pack()) == header

    def test_migreq_default_is_one(self):
        # IB spec: MigReq starts at 1 — the E810 bug is sending 0 (§6.2.3).
        assert BaseTransportHeader().migreq is True

    def test_migreq_bit_position(self):
        # MigReq is bit 6 of BTH byte 1.
        with_mig = BaseTransportHeader(migreq=True).pack()
        without = BaseTransportHeader(migreq=False).pack()
        assert with_mig[1] & 0x40
        assert not without[1] & 0x40

    def test_psn_masked_to_24_bits(self):
        header = BaseTransportHeader(psn=0x1FFFFFF)
        assert BaseTransportHeader.unpack(header.pack()).psn == 0xFFFFFF

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            BaseTransportHeader.unpack(b"\x00" * 4)


class TestOpcodeProperties:
    def test_data_opcodes(self):
        assert Opcode.SEND_ONLY.is_data
        assert Opcode.RDMA_WRITE_MIDDLE.is_data
        assert Opcode.RDMA_READ_RESPONSE_LAST.is_data
        assert not Opcode.ACKNOWLEDGE.is_data
        assert not Opcode.RDMA_READ_REQUEST.is_data
        assert not Opcode.CNP.is_data

    def test_last_flags(self):
        assert Opcode.SEND_LAST.is_last
        assert Opcode.RDMA_WRITE_ONLY.is_last
        assert Opcode.RDMA_READ_RESPONSE_ONLY.is_last
        assert not Opcode.SEND_MIDDLE.is_last

    def test_first_flags(self):
        assert Opcode.SEND_FIRST.is_first
        assert not Opcode.SEND_ONLY.is_first

    def test_family_flags(self):
        assert Opcode.SEND_MIDDLE.is_send
        assert Opcode.RDMA_WRITE_FIRST.is_write
        assert Opcode.RDMA_READ_RESPONSE_MIDDLE.is_read_response
        assert not Opcode.SEND_MIDDLE.is_write


class TestReth:
    def test_pack_length(self):
        assert len(RdmaExtendedHeader().pack()) == RETH_LEN

    def test_roundtrip(self):
        header = RdmaExtendedHeader(virtual_address=0x10_0000_0000,
                                    rkey=0xCAFE, dma_length=1 << 20)
        assert RdmaExtendedHeader.unpack(header.pack()) == header


class TestAeth:
    def test_pack_length(self):
        assert len(AckExtendedHeader().pack()) == AETH_LEN

    def test_ack_constructor(self):
        aeth = AckExtendedHeader.ack(msn=77)
        assert aeth.is_ack and not aeth.is_nak
        assert aeth.msn == 77

    def test_nak_constructor(self):
        aeth = AckExtendedHeader.nak_sequence_error(msn=3)
        assert aeth.is_nak and not aeth.is_ack
        kind, code = AethSyndrome.decode(aeth.syndrome)
        assert kind == AethSyndrome.NAK
        assert code == 0  # PSN sequence error

    def test_roundtrip(self):
        aeth = AckExtendedHeader.nak_sequence_error(msn=0x123456)
        assert AckExtendedHeader.unpack(aeth.pack()) == aeth

    def test_syndrome_encode_rejects_wide_code(self):
        with pytest.raises(ValueError):
            AethSyndrome.encode(AethSyndrome.ACK, 0x20)
