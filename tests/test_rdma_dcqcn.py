"""Unit tests for DCQCN: reaction-point rate machine and CNP limiter."""

from repro.rdma.dcqcn import CnpRateLimiter, DcqcnParams, DcqcnRp
from repro.rdma.profiles import CX4_LX, CX5, E810, IDEAL
from repro.sim.engine import Simulator, US


class TestReactionPoint:
    def test_starts_at_line_rate(self, sim):
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        assert rp.rate_bps == 100_000_000_000

    def test_cnp_cuts_rate(self, sim):
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        rp.handle_cnp()
        # alpha starts at 1 -> first cut is rate * (1 - 1/2).
        assert rp.rate_bps == 50_000_000_000
        assert rp.target_rate_bps == 100_000_000_000

    def test_successive_cnps_keep_cutting(self, sim):
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        for _ in range(10):
            rp.handle_cnp()
        assert rp.rate_bps < 10_000_000_000

    def test_rate_never_below_floor(self, sim):
        params = DcqcnParams(min_rate_bps=1_000_000)
        rp = DcqcnRp(sim, line_rate_bps=100_000_000, params=params)
        for _ in range(100):
            rp.handle_cnp()
        assert rp.rate_bps >= 1_000_000

    def test_alpha_increases_on_cnp(self, sim):
        params = DcqcnParams()
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000, params=params)
        rp.alpha = 0.5
        rp.handle_cnp()
        assert rp.alpha > 0.5

    def test_alpha_decays_without_cnps(self, sim):
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        rp.handle_cnp()
        alpha_after_cut = rp.alpha
        sim.run_for(10 * rp.params.alpha_timer_ns)
        assert rp.alpha < alpha_after_cut

    def test_rate_recovers_over_time(self, sim):
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        rp.handle_cnp()
        cut_rate = rp.rate_bps
        sim.run_for(100 * rp.params.increase_timer_ns)
        assert rp.rate_bps > cut_rate

    def test_full_recovery_reaches_line_rate(self, sim):
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        rp.handle_cnp()
        sim.run_for(3_000_000_000)  # 3 s of recovery
        assert rp.rate_bps == 100_000_000_000

    def test_timers_stop_after_full_recovery(self, sim):
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        rp.handle_cnp()
        sim.run_for(3_000_000_000)
        # Queue must drain: no immortal timers.
        assert sim.pending == 0

    def test_byte_counter_triggers_increase(self, sim):
        params = DcqcnParams(byte_counter_bytes=10_000)
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000, params=params)
        rp.handle_cnp()
        cut_rate = rp.rate_bps
        for _ in range(10):
            rp.on_bytes_sent(10_000)
        assert rp.rate_bps > cut_rate

    def test_rate_change_callback(self, sim):
        changes = []
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000,
                     on_rate_change=changes.append)
        rp.handle_cnp()
        assert changes and changes[0] == 50_000_000_000

    def test_cnp_count(self, sim):
        rp = DcqcnRp(sim, line_rate_bps=100_000_000_000)
        rp.handle_cnp()
        rp.handle_cnp()
        assert rp.cnp_count == 2


class TestCnpRateLimiter:
    def test_first_cnp_always_allowed(self):
        limiter = CnpRateLimiter(CX5, configured_interval_ns=4 * US)
        assert limiter.allow(0, qp_num=1, src_ip=10)

    def test_interval_enforced(self):
        limiter = CnpRateLimiter(CX5, configured_interval_ns=4 * US)
        assert limiter.allow(0, 1, 10)
        assert not limiter.allow(3_999, 1, 10)
        assert limiter.allow(4_000, 1, 10)
        assert limiter.suppressed == 1

    def test_per_port_scope_shares_one_limiter(self):
        limiter = CnpRateLimiter(CX5, configured_interval_ns=4 * US)
        assert limiter.allow(0, qp_num=1, src_ip=10)
        # Different QP and different IP still hit the same port limiter.
        assert not limiter.allow(100, qp_num=2, src_ip=20)

    def test_per_ip_scope_separates_destinations(self):
        limiter = CnpRateLimiter(CX4_LX, configured_interval_ns=4 * US)
        assert limiter.allow(0, qp_num=1, src_ip=10)
        assert limiter.allow(100, qp_num=2, src_ip=20)   # other IP: allowed
        assert not limiter.allow(200, qp_num=3, src_ip=10)  # same IP: blocked

    def test_per_qp_scope_separates_qps(self):
        limiter = CnpRateLimiter(IDEAL.with_overrides(
            hidden_cnp_interval_ns=4 * US))
        assert limiter.allow(0, qp_num=1, src_ip=10)
        assert limiter.allow(100, qp_num=2, src_ip=10)   # other QP: allowed
        assert not limiter.allow(200, qp_num=1, src_ip=10)

    def test_e810_hidden_floor_overrides_configuration(self):
        # §6.3: E810 has no user knob, yet enforces ~50 µs internally.
        limiter = CnpRateLimiter(E810, configured_interval_ns=0)
        assert limiter.effective_interval_ns == 50 * US

    def test_nvidia_configuration_honoured(self):
        limiter = CnpRateLimiter(CX5, configured_interval_ns=7 * US)
        assert limiter.effective_interval_ns == 7 * US

    def test_nvidia_zero_interval_disables_coalescing(self):
        limiter = CnpRateLimiter(CX5, configured_interval_ns=0)
        assert limiter.allow(0, 1, 10)
        assert limiter.allow(1, 1, 10)

    def test_default_interval_from_profile(self):
        limiter = CnpRateLimiter(CX5)
        assert limiter.effective_interval_ns == CX5.min_time_between_cnps_ns
