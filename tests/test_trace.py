"""Unit tests for trace reconstruction and the integrity check (§3.5)."""

import pytest

from repro.core.trace import TraceGap, check_integrity, reconstruct_trace
from repro.dumper.records import make_record
from repro.net.headers import (
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    UdpHeader,
)
from repro.net.packet import EventType, Packet


def mirrored(seq, psn, timestamp=None, opcode=Opcode.SEND_ONLY,
             event=EventType.NONE, src=1, dst=2, qpn=9):
    packet = Packet(
        eth=EthernetHeader(src_mac=seq, dst_mac=timestamp if timestamp is not None else seq * 100),
        ip=Ipv4Header(src_ip=src, dst_ip=dst, ttl=event),
        udp=UdpHeader(src_port=0xC000, dst_port=4791),
        bth=BaseTransportHeader(opcode=opcode, dest_qp=qpn, psn=psn),
        payload_len=64,
    )
    if opcode == Opcode.ACKNOWLEDGE:
        packet.aeth = AckExtendedHeader.ack()
    packet.ip.total_length = packet.size - 14
    packet.udp.length = packet.ip.total_length - 20
    return make_record(packet, rx_time_ns=seq, server="d0", core=0)


class TestReconstruction:
    def test_records_sorted_by_mirror_seq(self):
        records = [mirrored(2, 12), mirrored(0, 10), mirrored(1, 11)]
        trace = reconstruct_trace(records)
        assert [p.mirror_seq for p in trace] == [0, 1, 2]
        assert [p.psn for p in trace] == [10, 11, 12]

    def test_iters_rederived_from_psn_stream(self):
        # 10 11 12 | 11 12 -> ITERs 1 1 1 2 2 (offline Fig. 3 replay).
        records = [mirrored(i, psn) for i, psn in
                   enumerate([10, 11, 12, 11, 12])]
        trace = reconstruct_trace(records)
        assert [p.iteration for p in trace] == [1, 1, 1, 2, 2]

    def test_iters_tracked_per_connection(self):
        records = [
            mirrored(0, 10, qpn=1),
            mirrored(1, 10, qpn=2),
            mirrored(2, 10, qpn=1),  # retransmission on conn 1 only
        ]
        trace = reconstruct_trace(records)
        assert [p.iteration for p in trace] == [1, 1, 2]

    def test_helpers(self):
        records = [
            mirrored(0, 10),
            mirrored(1, 11, event=EventType.DROP),
            mirrored(2, 100, opcode=Opcode.ACKNOWLEDGE, src=2, dst=1),
        ]
        trace = reconstruct_trace(records)
        assert len(trace) == 3
        assert len(trace.connections()) == 2
        assert len(trace.data_packets()) == 2
        assert len(trace.acks()) == 1
        assert trace.packets[1].was_dropped
        assert not trace.packets[0].was_dropped

    def test_find_by_psn_and_iteration(self):
        records = [mirrored(i, psn) for i, psn in enumerate([10, 11, 10])]
        trace = reconstruct_trace(records)
        first = trace.find((1, 2, 9), 10, 1)
        retrans = trace.find((1, 2, 9), 10, 2)
        assert first.mirror_seq == 0
        assert retrans.mirror_seq == 2
        assert trace.find((1, 2, 9), 10, 3) is None

    def test_empty_trace(self):
        trace = reconstruct_trace([])
        assert len(trace) == 0
        assert trace.connections() == []
        assert trace.find((1, 2, 9), 10) is None

    def test_for_connection_preserves_trace_order(self):
        records = [
            mirrored(0, 10, qpn=1),
            mirrored(1, 50, qpn=2),
            mirrored(2, 11, qpn=1),
            mirrored(3, 10, qpn=1),  # retransmission, later in the trace
        ]
        trace = reconstruct_trace(records)
        conn1 = trace.for_connection((1, 2, 1))
        assert [p.mirror_seq for p in conn1] == [0, 2, 3]
        assert [p.mirror_seq for p in trace.for_connection((1, 2, 2))] == [1]
        assert trace.for_connection((9, 9, 9)) == []

    def test_find_returns_first_match(self):
        # Two packets with the same (conn, PSN, ITER) identity: find()
        # must return the earlier one, like the original linear scan.
        records = [mirrored(0, 10), mirrored(1, 11), mirrored(2, 11)]
        trace = reconstruct_trace(records)
        trace.packets[2].iteration = 1  # force an identity collision
        assert trace.find((1, 2, 9), 11, 1).mirror_seq == 1


class TestIntegrity:
    def _counters(self, mirrored_count, roce_rx):
        return {"mirrored_packets": mirrored_count, "roce_rx_packets": roce_rx}

    def test_complete_trace_passes(self):
        trace = reconstruct_trace([mirrored(i, 10 + i) for i in range(4)])
        report = check_integrity(trace, self._counters(4, 4))
        assert report.ok
        assert report.seq_consecutive
        assert report.mirror_count_matches
        assert report.roce_count_matches
        assert "PASS" in report.summary()

    def test_missing_sequence_fails_condition_1(self):
        records = [mirrored(i, 10 + i) for i in (0, 1, 3)]  # seq 2 missing
        trace = reconstruct_trace(records)
        report = check_integrity(trace, self._counters(4, 4))
        assert not report.ok
        assert not report.seq_consecutive
        assert 2 in report.missing_seqs

    def test_mirror_count_mismatch_fails_condition_2(self):
        trace = reconstruct_trace([mirrored(i, 10 + i) for i in range(3)])
        report = check_integrity(trace, self._counters(5, 3))
        assert not report.mirror_count_matches
        assert report.roce_count_matches
        assert not report.ok

    def test_roce_count_mismatch_fails_condition_3(self):
        trace = reconstruct_trace([mirrored(i, 10 + i) for i in range(3)])
        report = check_integrity(trace, self._counters(3, 7))
        assert report.mirror_count_matches
        assert not report.roce_count_matches

    def test_empty_trace_with_zero_counters_passes(self):
        report = check_integrity(reconstruct_trace([]), self._counters(0, 0))
        assert report.ok

    # Regression: ``missing`` used to be computed against the *trace's*
    # own max seq, so losses at the tail (or an entirely lost capture)
    # produced missing=[] and hid the damage behind the blunt count
    # mismatch. The switch's mirrored count is the ground truth.
    def test_head_loss_missing_seqs(self):
        records = [mirrored(i, 10 + i) for i in (2, 3)]  # seqs 0, 1 lost
        report = check_integrity(reconstruct_trace(records),
                                 self._counters(4, 4))
        assert not report.ok
        assert report.missing_seqs == [0, 1]

    def test_middle_loss_missing_seqs(self):
        records = [mirrored(i, 10 + i) for i in (0, 3)]
        report = check_integrity(reconstruct_trace(records),
                                 self._counters(4, 4))
        assert report.missing_seqs == [1, 2]

    def test_tail_loss_missing_seqs(self):
        records = [mirrored(i, 10 + i) for i in (0, 1)]  # seqs 2, 3 lost
        report = check_integrity(reconstruct_trace(records),
                                 self._counters(4, 4))
        assert not report.ok
        assert report.missing_seqs == [2, 3]

    def test_fully_lost_capture_reports_every_seq(self):
        report = check_integrity(reconstruct_trace([]), self._counters(3, 3))
        assert not report.ok
        assert report.missing_seqs == [0, 1, 2]


class TestGaps:
    def test_complete_trace_has_no_gaps(self):
        trace = reconstruct_trace([mirrored(i, 10 + i) for i in range(4)],
                                  expected_packets=4)
        assert not trace.has_gaps
        assert trace.gaps == []
        assert trace.coverage == 1.0

    def test_interior_gap_annotated_with_timestamps(self):
        records = [mirrored(i, 10 + i, timestamp=i * 1000) for i in (0, 3)]
        trace = reconstruct_trace(records, expected_packets=4)
        assert len(trace.gaps) == 1
        gap = trace.gaps[0]
        assert (gap.first_seq, gap.last_seq) == (1, 2)
        assert gap.count == 2
        assert gap.before_ns == 0
        assert gap.after_ns == 3000
        assert trace.coverage == pytest.approx(0.5)

    def test_tail_gap_needs_expected_count(self):
        records = [mirrored(i, 10 + i) for i in (0, 1)]
        assert not reconstruct_trace(records).has_gaps
        trace = reconstruct_trace(records, expected_packets=4)
        assert len(trace.gaps) == 1
        assert (trace.gaps[0].first_seq, trace.gaps[0].last_seq) == (2, 3)
        assert trace.gaps[0].after_ns is None

    def test_gap_overlap_window(self):
        gap = TraceGap(first_seq=1, last_seq=2, before_ns=100, after_ns=500)
        assert gap.overlaps(200, 300)
        assert gap.overlaps(0, 150)
        assert not gap.overlaps(600, 900)
        assert not gap.overlaps(0, 99)
        # Open bounds are conservative: unknown extent always overlaps.
        tail = TraceGap(first_seq=5, last_seq=6, before_ns=100, after_ns=None)
        assert tail.overlaps(1_000_000, 2_000_000)

    def test_conn_coverage(self):
        records = [
            mirrored(0, 10, timestamp=100, qpn=1),
            mirrored(1, 20, timestamp=200, qpn=2),
            mirrored(3, 11, timestamp=400, qpn=1),  # seq 2 lost
        ]
        trace = reconstruct_trace(records, expected_packets=4)
        assert trace.has_gaps
        # Both live connections span the gap window, and an unseen
        # connection may have lived entirely inside the hole.
        assert not trace.conn_coverage_ok((1, 2, 1))
        assert not trace.conn_coverage_ok((9, 9, 9))
        clean = reconstruct_trace([mirrored(i, 10 + i) for i in range(3)],
                                  expected_packets=3)
        assert clean.conn_coverage_ok((1, 2, 9))
