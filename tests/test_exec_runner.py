"""Tests for the process-pool campaign runner (repro.exec)."""

import pytest

from repro.exec import ParallelRunner
from repro.exec import runner as runner_mod
from repro.exec.tasks import (
    crash_in_worker_task,
    echo_task,
    sleep_task,
    telemetry_probe_task,
)
from repro.telemetry import runtime as telemetry


@pytest.fixture(autouse=True)
def _no_leaked_session():
    telemetry.disable()
    yield
    telemetry.disable()


def _double(payload):
    # Serial-path-only task: workers=1 never pickles task_fn, so a
    # test-module function is fine here (pool tasks live in exec.tasks).
    return payload * 2


def _explode(payload):
    raise ValueError(f"bad payload {payload}")


class TestSerialPath:
    def test_workers_one_runs_in_process(self):
        with ParallelRunner(_double, workers=1) as runner:
            outcomes = runner.map([1, 2, 3])
        assert [o.value for o in outcomes] == [2, 4, 6]
        assert all(o.ok and o.ran_in_process for o in outcomes)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert runner.stats.pools_created == 0
        assert runner.stats.in_process_runs == 3

    def test_task_error_is_an_outcome_not_an_exception(self):
        with ParallelRunner(_explode, workers=1) as runner:
            outcomes = runner.map(["x"])
        assert not outcomes[0].ok
        assert "ValueError" in outcomes[0].error
        assert runner.stats.tasks_failed == 1

    def test_empty_map(self):
        with ParallelRunner(_double, workers=1) as runner:
            assert runner.map([]) == []

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(_double, workers=0)


class TestPoolPath:
    def test_results_keep_payload_order(self):
        payloads = list(range(7))
        with ParallelRunner(echo_task, workers=2) as runner:
            outcomes = runner.map(payloads)
        assert [o.value for o in outcomes] == payloads
        assert all(o.ok and not o.ran_in_process for o in outcomes)
        assert runner.stats.pools_created == 1

    def test_pool_reused_across_map_calls(self):
        with ParallelRunner(echo_task, workers=2) as runner:
            runner.map([1, 2])
            runner.map([3, 4])
        assert runner.stats.pools_created == 1
        assert runner.stats.tasks_completed == 4

    def test_task_exception_in_worker_reported_not_raised(self):
        # float("oops") raises inside the worker; the pool survives.
        with ParallelRunner(sleep_task, workers=2) as runner:
            outcomes = runner.map([{"seconds": "oops"}, {"seconds": 0.01}])
        assert not outcomes[0].ok
        assert "ValueError" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].value == 0.01


class TestFailureRecovery:
    def test_worker_crash_retries_then_falls_back_in_process(self):
        # The task kills its pool worker every time, so every payload
        # must eventually complete on the in-process fallback path —
        # the campaign loses no work to a dying pool.
        with ParallelRunner(crash_in_worker_task, workers=2,
                            max_retries=2) as runner:
            outcomes = runner.map([10, 20, 30])
        assert [o.value for o in outcomes] == [10, 20, 30]
        assert all(o.ok for o in outcomes)
        assert any(o.ran_in_process for o in outcomes)
        assert runner.stats.worker_crashes >= 1

    def test_timeout_abandons_task_and_completes_the_rest(self):
        # Generous timeout: result(timeout=...) also covers the fresh
        # pool's spawn cold-start for the re-pended task.
        with ParallelRunner(sleep_task, workers=2,
                            task_timeout_s=2.0) as runner:
            outcomes = runner.map([{"seconds": 30.0}, {"seconds": 0.01}])
        assert not outcomes[0].ok
        assert "timed out" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].value == 0.01
        assert runner.stats.timeouts == 1

    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch):
        def no_pools(*args, **kwargs):
            raise OSError("no process pools on this platform")

        monkeypatch.setattr(runner_mod.concurrent.futures,
                            "ProcessPoolExecutor", no_pools)
        with ParallelRunner(echo_task, workers=4) as runner:
            outcomes = runner.map([1, 2, 3])
        assert [o.value for o in outcomes] == [1, 2, 3]
        assert all(o.ok and o.ran_in_process for o in outcomes)
        assert runner.stats.pools_created == 0


class TestTelemetryMerge:
    def test_worker_metrics_merge_into_parent_session(self):
        session = telemetry.enable()
        try:
            with ParallelRunner(telemetry_probe_task, workers=2) as runner:
                outcomes = runner.map([{"n": 2}, {"n": 3}, {"n": 5}])
            assert all(o.ok for o in outcomes)
            counter = session.registry.find("exec_probe_events")
            assert counter is not None and counter.value == 10
        finally:
            telemetry.disable()

    def test_serial_path_updates_parent_registry_directly(self):
        session = telemetry.enable()
        try:
            with ParallelRunner(telemetry_probe_task, workers=1) as runner:
                runner.map([{"n": 4}])
            counter = session.registry.find("exec_probe_events")
            assert counter is not None and counter.value == 4
        finally:
            telemetry.disable()

    def test_no_session_no_collection(self):
        with ParallelRunner(telemetry_probe_task, workers=2) as runner:
            outcomes = runner.map([{"n": 1}])
        assert outcomes[0].ok
        assert telemetry.active() is None
