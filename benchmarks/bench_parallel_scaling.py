"""Parallel campaign scaling — runs/sec at 1, 2 and 4 workers.

Runs the same deterministic fuzzing campaign (fixed seed, fixed
``batch_size``, so an identical generation schedule) at each worker
count and reports campaign throughput. Two claims are checked:

* **Determinism always**: the report fingerprint must be identical for
  every worker count — the batched schedule makes worker count an
  execution detail, never a behavioural one.
* **Scaling where possible**: on a machine with >= 4 usable cores the
  4-worker campaign must reach >= 2x the serial throughput. On smaller
  machines (CI runners are often 1-2 cores) the numbers are recorded
  but the speedup assertion is skipped — a 1-core box physically
  cannot run simulations concurrently.

Besides the usual results table, writes machine-readable
``benchmarks/results/BENCH_parallel.json`` for tracking across runs.
"""

import json
import os
import time

from conftest import RESULTS_DIR, emit

from repro import quick_config
from repro.core.fuzz import LuminaFuzzer

SEED = 7
ITERATIONS = 12
BATCH = 4
WORKER_COUNTS = (1, 2, 4)
MIN_CORES_FOR_SCALING_CLAIM = 4
MIN_SPEEDUP_AT_4 = 2.0


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _base_config():
    # Heavy enough that simulation dominates pool overhead, light
    # enough that the serial baseline stays a few seconds.
    return quick_config(nic="e810", verb="write", num_msgs=10,
                        message_size=102400, num_connections=2)


def _campaign(workers: int):
    fuzzer = LuminaFuzzer(_base_config(), seed=SEED, anomaly_threshold=2.5)
    start = time.perf_counter()
    report = fuzzer.run(iterations=ITERATIONS, batch_size=BATCH,
                        workers=workers)
    return report, time.perf_counter() - start


def _fingerprint(report):
    return (report.iterations_run, report.invalid_runs,
            tuple(round(s, 9) for s in report.pool_scores),
            tuple((f.iteration, round(f.score.total, 9))
                  for f in report.findings))


def test_parallel_scaling(benchmark):
    cpus = _cpus()
    series = []
    fingerprints = []
    for workers in WORKER_COUNTS:
        report, elapsed = _campaign(workers)
        fingerprints.append(_fingerprint(report))
        series.append({
            "workers": workers,
            "seconds": round(elapsed, 3),
            "runs_per_sec": round(ITERATIONS / elapsed, 2),
        })
    baseline = series[0]["seconds"]
    for row in series:
        row["speedup"] = round(baseline / row["seconds"], 2)

    deterministic = all(fp == fingerprints[0] for fp in fingerprints)
    payload = {
        "workload": {"nic": "e810", "iterations": ITERATIONS,
                     "batch_size": BATCH, "seed": SEED},
        "machine": {"cpus": cpus},
        "series": series,
        "deterministic": deterministic,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    lines = [f"fuzz campaign: {ITERATIONS} iterations, batch {BATCH}, "
             f"seed {SEED}, e810  ({cpus} cpu(s))",
             f"{'workers':>8s} {'seconds':>9s} {'runs/s':>8s} {'speedup':>8s}"]
    for row in series:
        lines.append(f"{row['workers']:>8d} {row['seconds']:>9.3f} "
                     f"{row['runs_per_sec']:>8.2f} {row['speedup']:>7.2f}x")
    lines.append(f"deterministic across worker counts: {deterministic}")
    emit("BENCH_parallel", lines)

    assert deterministic, "campaign reports diverged across worker counts"
    if cpus >= MIN_CORES_FOR_SCALING_CLAIM:
        speedup4 = series[-1]["speedup"]
        assert speedup4 >= MIN_SPEEDUP_AT_4, (
            f"expected >= {MIN_SPEEDUP_AT_4}x at 4 workers on a "
            f"{cpus}-core machine, measured {speedup4}x")

    # One serial campaign as the pytest-benchmark row.
    benchmark.pedantic(_campaign, args=(1,), rounds=1, iterations=1)
