"""Packet hot-path microbenchmarks and the perf-regression gate.

Measures the three layers every simulated packet pays for — header
serialization (+iCRC), raw CRC folding, and engine event dispatch —
plus one end-to-end ``run_test`` on the parallel-scaling workload, and
writes a canonical ``BENCH_hotpath.json``.

Run as a script (no pytest needed):

    python benchmarks/bench_hotpath.py                  # measure + write results/
    python benchmarks/bench_hotpath.py --check          # gate vs committed baseline
    python benchmarks/bench_hotpath.py --update-baseline  # refresh the committed file

``--check`` compares every section's throughput metric against the
committed ``benchmarks/BENCH_hotpath.json`` and exits 1 on a >25%
regression — the CI ``perf`` job runs exactly this. The committed file
also records the pre-refactor (PR 6) numbers measured with the
interpreted ``struct.pack``/dict-``Packet``/pure-Python-CRC hot path,
so the speedup trajectory stays auditable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINE_PATH = BENCH_DIR / "BENCH_hotpath.json"

sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro import quick_config  # noqa: E402
from repro.api import run_test  # noqa: E402
from repro.net.checksum import crc32_ib, icrc_for  # noqa: E402
from repro.net.headers import (  # noqa: E402
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    RdmaExtendedHeader,
    UdpHeader,
)
from repro.net.packet import Packet  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

#: Allowed slowdown vs the committed baseline before --check fails.
TOLERANCE = 0.25

#: Payload length used by the pack+iCRC microbenchmark (a typical MTU
#: fragment; the zero-fold over it dominates an uncached pure-Python
#: iCRC, which is exactly the cost the zlib backend removes).
PACK_PAYLOAD_LEN = 1024


# ----------------------------------------------------------------------
# Section 1: header pack + iCRC (fresh packet each time: no wire cache)
# ----------------------------------------------------------------------
def _fresh_packet(i: int) -> Packet:
    """A representative packet; cycles data/read-response/ACK shapes."""
    shape = i % 3
    bth = BaseTransportHeader(
        opcode=(Opcode.RDMA_WRITE_ONLY, Opcode.RDMA_READ_RESPONSE_ONLY,
                Opcode.ACKNOWLEDGE)[shape],
        dest_qp=0x100 + (i & 0xFF), psn=i & 0xFFFFFF,
        ack_request=shape == 0,
    )
    return Packet(
        eth=EthernetHeader(dst_mac=0x02AABB000001, src_mac=0x02AABB000002),
        ip=Ipv4Header(src_ip=0x0A000001, dst_ip=0x0A000002,
                      total_length=20 + 8 + 12 + PACK_PAYLOAD_LEN),
        udp=UdpHeader(src_port=0xC000 + (i & 0xFF)),
        bth=bth,
        reth=RdmaExtendedHeader(virtual_address=0x7F00_0000_0000 + i,
                                rkey=0x1EE7, dma_length=PACK_PAYLOAD_LEN)
        if shape == 0 else None,
        aeth=AckExtendedHeader.ack(msn=i & 0xFFFFFF) if shape else None,
        payload_len=PACK_PAYLOAD_LEN if shape != 2 else 0,
    )


def bench_pack_icrc(n: int = 20_000, repeats: int = 3) -> dict:
    best = float("inf")
    for _ in range(repeats):
        icrc_for.cache_clear()
        start = time.perf_counter()
        for i in range(n):
            packet = _fresh_packet(i)
            packet.pack_headers()
            packet.icrc()
        best = min(best, time.perf_counter() - start)
    return {"packets_per_sec": round(n / best, 1), "n": n,
            "payload_len": PACK_PAYLOAD_LEN, "seconds": round(best, 4)}


# ----------------------------------------------------------------------
# Section 2: raw CRC fold throughput
# ----------------------------------------------------------------------
def bench_crc32(buf_len: int = 4096, n: int = 2_000, repeats: int = 3) -> dict:
    buf = bytes(range(256)) * (buf_len // 256)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(n):
            crc32_ib(buf)
        best = min(best, time.perf_counter() - start)
    mb = n * buf_len / (1024 * 1024)
    return {"mb_per_sec": round(mb / best, 2), "buf_len": buf_len, "n": n}


# ----------------------------------------------------------------------
# Section 3: engine dispatch (serialization-delay + same-tick pattern)
# ----------------------------------------------------------------------
def _engine_workload(n_events: int) -> float:
    """Events/sec for a link-like schedule mix.

    64 hop chains reschedule themselves at small distinct delays (the
    per-link serialization pattern), and every fourth hop fans out two
    zero-delay events (pipeline hand-offs on the same tick).
    """
    sim = Simulator()
    budget = [n_events]

    def noop() -> None:
        pass

    def hop(delay: int) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        sim.schedule(delay, hop, 40 + (delay * 7 + 13) % 211)
        if budget[0] % 4 == 0:
            sim.schedule(0, noop)
            sim.schedule(0, noop)
    for lane in range(64):
        sim.schedule(lane, hop, 40 + lane % 13)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_processed / elapsed


def bench_engine(n_events: int = 200_000, repeats: int = 3) -> dict:
    best = max(_engine_workload(n_events) for _ in range(repeats))
    return {"events_per_sec": round(best, 1), "n_events": n_events}


# ----------------------------------------------------------------------
# Section 4: end to end — the bench_parallel_scaling workload
# ----------------------------------------------------------------------
def bench_e2e(repeats: int = 3) -> dict:
    config = quick_config(nic="e810", verb="write", num_msgs=10,
                          message_size=102400, num_connections=2)
    best = float("inf")
    packets = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_test(config)
        best = min(best, time.perf_counter() - start)
        packets = len(result.trace)
    return {"packets_per_sec": round(packets / best, 1),
            "seconds": round(best, 4), "trace_packets": packets,
            "workload": {"nic": "e810", "verb": "write", "num_msgs": 10,
                         "message_size": 102400, "num_connections": 2}}


#: section name -> (metric key, pretty unit)
SECTIONS = {
    "pack_icrc": (bench_pack_icrc, "packets_per_sec", "pkt/s"),
    "crc32": (bench_crc32, "mb_per_sec", "MiB/s"),
    "engine": (bench_engine, "events_per_sec", "ev/s"),
    "e2e": (bench_e2e, "packets_per_sec", "pkt/s"),
}


def measure() -> dict:
    sections = {}
    for name, (fn, _metric, _unit) in SECTIONS.items():
        sections[name] = fn()
    return {"schema": 1, "sections": sections}


def render(payload: dict, baseline: dict = None) -> str:
    lines = [f"{'section':<12s} {'throughput':>14s}  unit"
             + ("        vs baseline" if baseline else "")]
    for name, (_fn, metric, unit) in SECTIONS.items():
        value = payload["sections"][name][metric]
        row = f"{name:<12s} {value:>14,.1f}  {unit}"
        if baseline:
            ref = baseline["sections"][name][metric]
            row += f"  {value / ref:>8.2f}x of {ref:,.1f}"
        lines.append(row)
    return "\n".join(lines)


def check(fresh: dict, baseline: dict) -> list:
    """Metric regressions beyond TOLERANCE, as human-readable strings."""
    failures = []
    for name, (_fn, metric, unit) in SECTIONS.items():
        ref = baseline["sections"].get(name, {}).get(metric)
        if ref is None:
            continue
        value = fresh["sections"][name][metric]
        floor = ref * (1.0 - TOLERANCE)
        if value < floor:
            failures.append(
                f"{name}: {value:,.1f} {unit} is below the regression "
                f"floor {floor:,.1f} (baseline {ref:,.1f}, -{TOLERANCE:.0%})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--check", action="store_true",
                        help="fail on >25%% regression vs the committed "
                             "baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite benchmarks/BENCH_hotpath.json")
    args = parser.parse_args(argv)

    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    fresh = measure()
    if baseline is not None and "pre_refactor" in baseline:
        fresh["pre_refactor"] = baseline["pre_refactor"]
        fresh["speedup_vs_pre_refactor"] = {
            name: round(fresh["sections"][name][metric]
                        / baseline["pre_refactor"][name][metric], 2)
            for name, (_fn, metric, _unit) in SECTIONS.items()
            if name in baseline["pre_refactor"]
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_hotpath.json"
    out.write_text(json.dumps(fresh, indent=2) + "\n")
    print(render(fresh, baseline))
    if "speedup_vs_pre_refactor" in fresh:
        pretty = ", ".join(f"{k} {v:.2f}x"
                           for k, v in fresh["speedup_vs_pre_refactor"].items())
        print(f"speedup vs pre-refactor hot path: {pretty}")
    print(f"wrote {out}")

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"updated {BASELINE_PATH}")
        return 0
    if args.check:
        if baseline is None:
            print("no committed baseline to check against", file=sys.stderr)
            return 1
        failures = check(fresh, baseline)
        for failure in failures:
            print(f"PERF REGRESSION — {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"perf gate OK (tolerance {TOLERANCE:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
