"""§6.3 — CNP rate-limiting modes.

Paper: by injecting ECN marks across multiple QPs and destination IPs
(multi-GID hosts) and comparing the CNP streams, Lumina reveals that
CX4 Lx rate-limits CNP generation per destination IP, CX5/CX6 Dx per
NIC port, and E810 per QP.
"""

from conftest import emit
from workloads import cnp_scope_config

from repro.core.analyzers import infer_rate_limit_scope
from repro.core.orchestrator import run_test
from repro.net.addressing import parse_cidr

EXPECTED = {
    "cx4": "per_ip",
    "cx5": "per_port",
    "cx6": "per_port",
    "e810": "per_qp",
}

#: Effective interval each NIC enforces in this experiment.
INTERVALS_NS = {"cx4": 4_000, "cx5": 4_000, "cx6": 4_000, "e810": 50_000}


def infer(nic: str, seed: int = 37) -> str:
    config = cnp_scope_config(nic, seed)
    result = run_test(config)
    ip_to_port = {}
    for cidr in config.requester.ip_list:
        ip_to_port[parse_cidr(cidr)[0]] = "requester-port"
    for cidr in config.responder.ip_list:
        ip_to_port[parse_cidr(cidr)[0]] = "responder-port"
    return infer_rate_limit_scope(result.trace, INTERVALS_NS[nic],
                                  ip_to_port=ip_to_port)


def test_sec63_cnp_rate_limit_modes(benchmark):
    inferred = {nic: infer(nic) for nic in EXPECTED}
    lines = ["nic    inferred-scope   paper", "-" * 36]
    for nic, scope in inferred.items():
        lines.append(f"{nic:>4s}   {scope:<14s}   {EXPECTED[nic]}")
    lines += ["", "experiment: 4 QPs over 2 GIDs per host, every data",
              "packet ECN-marked, DCQCN RP disabled; scope inferred from",
              "which merged CNP streams respect the minimum interval"]
    emit("sec63_cnp_modes", lines)
    assert inferred == EXPECTED
    benchmark.pedantic(infer, args=("cx4",), rounds=1, iterations=1)
