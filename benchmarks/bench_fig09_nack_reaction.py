"""Figure 9 — NACK reaction latency vs PSN of the dropped packet.

Paper: the sender-side phase of Go-back-N recovery. CX5 and CX6 Dx
react within 2–8 µs; CX4 Lx takes hundreds of µs (its overall
retransmission delay is ~200 µs ≈ 100 base RTTs); E810 is ~100 µs.
"""

from conftest import emit
from workloads import retrans_sweep_config

from repro.core.analyzers import analyze_retransmissions
from repro.core.orchestrator import run_test

NICS = ("cx4", "cx5", "cx6", "e810")
DROP_PSNS = (1, 20, 40, 60, 80, 99)


def measure(nic: str, verb: str, drop_psn: int, seed: int = 0):
    seed = seed or (3 + drop_psn)  # vary jitter draws across sweep points
    result = run_test(retrans_sweep_config(nic, verb, drop_psn, seed))
    event = analyze_retransmissions(result.trace)[0]
    assert event.fast_retransmission
    return event


def series(verb: str):
    return {nic: [measure(nic, verb, psn).nack_reaction_ns / 1e3
                  for psn in DROP_PSNS]
            for nic in NICS}


def _render(verb: str, data) -> list:
    lines = [f"NACK reaction latency (us), {verb} traffic",
             "dropped-psn " + "".join(f"{p:>10d}" for p in DROP_PSNS),
             "-" * 75]
    for nic in NICS:
        lines.append(f"{nic:>10s}  " + "".join(f"{v:>10.1f}" for v in data[nic]))
    return lines


def _assert_shape(data):
    # CX5/CX6 in single-digit µs; CX4 hundreds of µs; E810 ~100 µs.
    assert max(data["cx5"]) < 10
    assert max(data["cx6"]) < 10
    assert all(120 < v < 260 for v in data["cx4"])
    assert all(50 < v < 200 for v in data["e810"])
    # Ordering: CX4 is the worst reactor by a large factor (Fig. 9).
    assert min(data["cx4"]) > 10 * max(data["cx6"])


def test_fig09a_write(benchmark):
    data = series("write")
    lines = _render("write", data)
    lines += ["", "paper: CX5/CX6 2-6us; CX4 ~170us; E810 ~100us"]
    emit("fig09a_nack_reaction_write", lines)
    _assert_shape(data)
    benchmark.pedantic(measure, args=("cx4", "write", 50), rounds=3,
                       iterations=1)


def test_fig09b_read(benchmark):
    data = series("read")
    lines = _render("read", data)
    lines += ["", "paper: CX5/CX6 2-4us; CX4 ~170us; E810 ~90us"]
    emit("fig09b_nack_reaction_read", lines)
    _assert_shape(data)
    benchmark.pedantic(measure, args=("cx4", "read", 50), rounds=3,
                       iterations=1)


def test_fig09_total_recovery_headline(benchmark):
    """§2's headline: CX4 retransmission delay ~200 µs ≈ 100 base RTTs."""
    event = measure("cx4", "write", 50)
    total_us = event.total_recovery_ns / 1e3
    lines = [f"CX4 Lx total retransmission delay: {total_us:.1f} us",
             "paper: ~200 us (~100 base RTTs)"]
    emit("fig09_cx4_total_recovery", lines)
    assert 120 < total_us < 320
    benchmark.pedantic(measure, args=("cx4", "write", 50), rounds=3,
                       iterations=1)
