"""Extension bench — lossy RoCE goodput sweep (§2 motivation, §7 outlook).

Not a numbered figure in the paper, but the study its §2 example calls
for: Shpiner et al. concluded from end-to-end goodput that ConnectX-4
handles loss well; Lumina's micro-measurements (200 µs per recovery)
predict the opposite at higher loss rates. This bench quantifies the
connection: goodput retained vs deterministic loss rate, per NIC.

Also sweeps the §7 extension *delay* event: late packets trigger NAK +
duplicate recovery without a retransmission timeout, so even CX4
tolerates reordering far better than loss.
"""

from conftest import emit
from workloads import two_host_config

from repro.core.config import DataPacketEvent, PeriodicDropIntent, TrafficConfig
from repro.core.orchestrator import run_test
from repro.rdma.profiles import get_profile

NICS = ("cx4", "cx5", "cx6", "e810")
LOSS_PERIODS = (0, 1000, 100)


def goodput_fraction(nic: str, period: int, seed: int = 19) -> float:
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=10,
        message_size=102400, mtu=1024, barrier_sync=False, tx_depth=2,
        min_retransmit_timeout=17,
        periodic_events=(PeriodicDropIntent(qpn=1, period=period),)
        if period else (),
    )
    result = run_test(two_host_config(nic, traffic, seed))
    line = get_profile(nic).default_bandwidth_gbps * 1e9
    return result.traffic_log.total_goodput_bps() / line


def delayed_mct_us(nic: str, delay_us: float, seed: int = 23) -> float:
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=10,
        message_size=102400, mtu=1024, barrier_sync=False, tx_depth=2,
        data_pkt_events=tuple(
            DataPacketEvent(qpn=1, psn=p, type="delay", delay_us=delay_us)
            for p in range(50, 1001, 100)),
    )
    result = run_test(two_host_config(nic, traffic, seed))
    return (result.traffic_log.avg_mct_ns or 0) / 1e3


def test_ext_lossy_goodput(benchmark):
    rows = {nic: [goodput_fraction(nic, p) for p in LOSS_PERIODS]
            for nic in NICS}
    lines = ["fraction of line rate retained",
             "nic     lossless    0.1%-loss    1%-loss", "-" * 45]
    for nic, values in rows.items():
        lines.append(f"{nic:<6s}" + "".join(f"{v:>11.0%}" for v in values))
    lines += ["", "expectation from §6.1 micro-measurements: the slower a",
              "NIC's loss recovery, the faster its goodput collapses"]
    emit("ext_lossy_goodput", lines)

    # Fast-recovery NICs keep most goodput at 1% loss; slow ones do not.
    assert rows["cx5"][2] > 0.4
    assert rows["cx6"][2] > 0.4
    assert rows["cx4"][2] < 0.3
    assert rows["e810"][2] < 0.3
    # Everyone is near line rate when lossless.
    for nic in NICS:
        assert rows[nic][0] > 0.8

    benchmark.pedantic(goodput_fraction, args=("cx5", 100), rounds=2,
                       iterations=1)


def test_ext_delay_vs_loss(benchmark):
    delayed = {nic: delayed_mct_us(nic, 20.0) for nic in ("cx4", "cx5")}
    lines = ["avg MCT with every 100th packet delayed 20us (no loss):",
             f"  cx4: {delayed['cx4']:.1f} us   cx5: {delayed['cx5']:.1f} us",
             "delay costs one NAK+duplicate round, never a timeout"]
    emit("ext_delay_vs_loss", lines)
    # Even CX4 keeps MCTs in the tens/low-hundreds of µs under pure
    # reordering (vs multi-ms under loss at the same positions).
    assert delayed["cx4"] < 1_000
    assert delayed["cx5"] < 100
    benchmark.pedantic(delayed_mct_us, args=("cx5", 20.0), rounds=2,
                       iterations=1)
