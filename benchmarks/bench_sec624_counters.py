"""§6.2.4 — incorrect RNIC counters.

Paper findings, both vendor-confirmed:

* Intel E810's ``cnpSent`` stays unchanged although the dumped trace
  shows CNPs being generated.
* NVIDIA CX4 Lx's ``implied_nak_seq_err`` stays unchanged when Read
  responses are dropped, while CX5/CX6 Dx increment it as expected.

The counter analyzer recomputes expected values from the wire trace and
diffs them against what each NIC reports.
"""

from conftest import emit
from workloads import two_host_config

from repro.core.analyzers import check_counters
from repro.core.config import DataPacketEvent, TrafficConfig
from repro.core.orchestrator import run_test

NICS = ("cx4", "cx5", "cx6", "e810")


def run_ecn_scenario(nic: str, seed: int = 9):
    traffic = TrafficConfig(num_connections=1, rdma_verb="write",
                            num_msgs_per_qp=3, message_size=10240, mtu=1024,
                            data_pkt_events=(DataPacketEvent(1, 3, "ecn"),
                                             DataPacketEvent(1, 23, "ecn")))
    return run_test(two_host_config(nic, traffic, seed))


def run_read_loss_scenario(nic: str, seed: int = 5):
    traffic = TrafficConfig(num_connections=1, rdma_verb="read",
                            num_msgs_per_qp=3, message_size=10240, mtu=1024,
                            data_pkt_events=(DataPacketEvent(1, 2, "drop"),))
    return run_test(two_host_config(nic, traffic, seed))


def test_sec624_counter_bugs(benchmark):
    lines = ["scenario          nic    mismatched counters", "-" * 60]
    cnp_bug = {}
    nak_bug = {}
    for nic in NICS:
        report = check_counters(run_ecn_scenario(nic))
        names = sorted({m.vendor_counter for m in report.mismatches})
        cnp_bug[nic] = names
        lines.append(f"ECN/CNP          {nic:>5s}   {names or '-'}")
    for nic in NICS:
        report = check_counters(run_read_loss_scenario(nic))
        names = sorted({m.vendor_counter for m in report.mismatches})
        nak_bug[nic] = names
        lines.append(f"Read loss        {nic:>5s}   {names or '-'}")
    lines += ["", "paper: E810 cnpSent stuck; CX4 implied_nak_seq_err stuck",
              "on Read; CX5/CX6 increment both correctly"]
    emit("sec624_counter_bugs", lines)

    assert cnp_bug["e810"] == ["cnpSent"]
    assert cnp_bug["cx4"] == cnp_bug["cx5"] == cnp_bug["cx6"] == []
    assert nak_bug["cx4"] == ["implied_nak_seq_err"]
    assert nak_bug["cx5"] == nak_bug["cx6"] == nak_bug["e810"] == []

    benchmark.pedantic(run_ecn_scenario, args=("e810",), rounds=2,
                       iterations=1)


def test_sec624_trace_is_the_ground_truth(benchmark):
    """The bug is detectable only because the dumped trace disagrees."""
    result = run_ecn_scenario("e810")
    cnps_on_wire = len(result.trace.cnps())
    reported = result.responder_counters.vendor["cnpSent"]
    lines = [f"CNPs in dumped trace: {cnps_on_wire}",
             f"E810 cnpSent counter: {reported}",
             "paper: counter remains unchanged while the receiver does "
             "generate CNPs as shown in the dumped packet trace"]
    emit("sec624_e810_cnpsent_evidence", lines)
    assert cnps_on_wire > 0
    assert reported == 0
    benchmark.pedantic(run_ecn_scenario, args=("cx5",), rounds=2,
                       iterations=1)
