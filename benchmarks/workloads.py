"""Workload generators shared by the benchmark harness.

Each function builds the exact traffic/injection configuration of one
paper experiment; the bench files sweep parameters and render tables.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.config import (
    DataPacketEvent,
    DumperPoolConfig,
    EtsConfig,
    EtsQueueSpec,
    HostConfig,
    PeriodicEcnIntent,
    RoceParameters,
    SwitchConfig,
    TestConfig,
    TrafficConfig,
)

__all__ = [
    "two_host_config",
    "retrans_sweep_config",
    "ets_config",
    "noisy_neighbor_config",
    "interop_config",
    "cnp_interval_config",
    "cnp_scope_config",
    "adaptive_retrans_config",
]


def two_host_config(nic: str, traffic: TrafficConfig, seed: int,
                    nic_responder: str = "", dumpers: int = 3,
                    roce: Optional[RoceParameters] = None,
                    switch: Optional[SwitchConfig] = None,
                    req_ips: Sequence[str] = ("10.0.0.1/24",),
                    resp_ips: Sequence[str] = ("10.0.0.2/24",),
                    max_duration_ns: int = 60_000_000_000) -> TestConfig:
    roce = roce or RoceParameters()
    return TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=tuple(req_ips), roce=roce),
        responder=HostConfig(nic_type=nic_responder or nic,
                             ip_list=tuple(resp_ips), roce=roce),
        traffic=traffic,
        dumpers=DumperPoolConfig(num_servers=dumpers),
        switch=switch or SwitchConfig(),
        seed=seed,
        max_duration_ns=max_duration_ns,
    )


def retrans_sweep_config(nic: str, verb: str, drop_psn: int,
                         seed: int) -> TestConfig:
    """Fig. 8/9 point: 100 KB messages, drop one mid-message packet."""
    traffic = TrafficConfig(
        num_connections=1, rdma_verb=verb, num_msgs_per_qp=3,
        message_size=102400, mtu=1024, barrier_sync=True,
        min_retransmit_timeout=17,  # large RTO so fast retrans dominates
        data_pkt_events=(DataPacketEvent(qpn=1, psn=drop_psn, type="drop"),),
    )
    return two_host_config(nic, traffic, seed)


def ets_config(nic: str, setting: str, seed: int,
               messages: int = 12) -> TestConfig:
    """Fig. 10 settings: multi_vanilla / multi_ecn / single_ecn."""
    if setting in ("multi_vanilla", "multi_ecn"):
        ets = EtsConfig(queues=(EtsQueueSpec(0, 50.0), EtsQueueSpec(1, 50.0)),
                        qp_to_queue={1: 0, 2: 1})
    elif setting == "single_ecn":
        ets = EtsConfig(queues=(EtsQueueSpec(0, 100.0),),
                        qp_to_queue={1: 0, 2: 0})
    else:
        raise ValueError(f"unknown ETS setting {setting!r}")
    mark = setting in ("multi_ecn", "single_ecn")
    traffic = TrafficConfig(
        num_connections=2, rdma_verb="write", num_msgs_per_qp=messages,
        message_size=1024 * 1024, mtu=1024, barrier_sync=False, tx_depth=2,
        periodic_events=(PeriodicEcnIntent(qpn=1, period=50),) if mark else (),
        ets=ets,
    )
    return two_host_config(nic, traffic, seed)


def noisy_neighbor_config(injected_flows: int, nic: str, seed: int,
                          total_flows: int = 36) -> TestConfig:
    """Fig. 11: Read flows with simultaneous injected drops."""
    events = tuple(DataPacketEvent(qpn=q + 1, psn=5, type="drop")
                   for q in range(injected_flows))
    traffic = TrafficConfig(
        num_connections=total_flows, rdma_verb="read", num_msgs_per_qp=10,
        message_size=20480, mtu=1024, barrier_sync=True,
        data_pkt_events=events,
    )
    return two_host_config(nic, traffic, seed)


def interop_config(req_nic: str, resp_nic: str, qps: int,
                   seed: int) -> TestConfig:
    """§6.2.3: Send traffic over many simultaneously-started QPs."""
    traffic = TrafficConfig(
        num_connections=qps, rdma_verb="send", num_msgs_per_qp=5,
        message_size=102400, mtu=1024, barrier_sync=True,
    )
    return two_host_config(req_nic, traffic, seed, nic_responder=resp_nic,
                           max_duration_ns=120_000_000_000)


def cnp_interval_config(nic: str, configured_us: int, seed: int,
                        messages: int = 20) -> TestConfig:
    """§6.3: mark every packet ECN, DCQCN RP disabled (Listing 1)."""
    total = messages * 100
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=messages,
        message_size=102400, mtu=1024, barrier_sync=False, tx_depth=4,
        periodic_events=(PeriodicEcnIntent(qpn=1, period=1),),
    )
    del total
    roce = RoceParameters(dcqcn_rp_enable=False,
                          min_time_between_cnps_us=configured_us)
    return two_host_config(nic, traffic, seed, roce=roce)


def cnp_scope_config(nic: str, seed: int) -> TestConfig:
    """§6.3: 4 QPs across 2 GIDs per host, every packet marked."""
    traffic = TrafficConfig(
        num_connections=4, rdma_verb="write", num_msgs_per_qp=3,
        message_size=102400, mtu=1024, multi_gid=True, barrier_sync=False,
        periodic_events=tuple(PeriodicEcnIntent(qpn=q, period=1)
                           for q in range(1, 5)),
    )
    roce = RoceParameters(dcqcn_rp_enable=False)
    return two_host_config(nic, traffic, seed, roce=roce,
                           req_ips=("10.0.0.1/24", "10.0.0.11/24"),
                           resp_ips=("10.0.0.2/24", "10.0.0.12/24"))


def adaptive_retrans_config(nic: str, adaptive: bool, drops: int,
                            seed: int, timeout_cfg: int = 14) -> TestConfig:
    """§6.3: drop the last packet of the message ``drops`` times."""
    events = tuple(DataPacketEvent(qpn=1, psn=10, type="drop", iter=i)
                   for i in range(1, drops + 1))
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=1,
        message_size=10240, mtu=1024, min_retransmit_timeout=timeout_cfg,
        max_retransmit_retry=7, data_pkt_events=events,
    )
    roce = RoceParameters(adaptive_retrans=adaptive)
    return two_host_config(nic, traffic, seed, roce=roce, dumpers=2,
                           max_duration_ns=10_000_000_000)
