"""Table 2 — bugs and hidden behaviours vs affected NICs.

Runs one detection scenario per Table 2 row against every NIC model and
prints the resulting matrix next to the paper's. Detection uses only
wire-visible evidence (traces, counters, application metrics) — exactly
what Lumina sees on real hardware.
"""

from conftest import emit
from workloads import (
    cnp_interval_config,
    ets_config,
    interop_config,
    noisy_neighbor_config,
    adaptive_retrans_config,
)

from repro.core.analyzers import (
    check_counters,
    min_cnp_interval_ns,
    per_qp_goodput_gbps,
    split_mct,
)
from repro.core.orchestrator import run_test

NICS = ("cx4", "cx5", "cx6", "e810")

#: Paper's Table 2 ground truth (NIC short names).
PAPER = {
    "non-work-conserving-ets": {"cx6"},
    "noisy-neighbor": {"cx4"},
    "interoperability": {"e810"},       # the MigReq=0 sender side
    "counter-inconsistency": {"cx4", "e810"},
    "cnp-rate-limiting": {"cx4", "cx5", "cx6", "e810"},
    "adaptive-retransmission": {"cx4", "cx5", "cx6"},
}


def detect_ets_bug(nic: str) -> bool:
    from repro.rdma.profiles import get_profile

    line = get_profile(nic).default_bandwidth_gbps
    goodput = per_qp_goodput_gbps(
        run_test(ets_config(nic, "multi_ecn", seed=5, messages=8)).traffic_log)
    # Bug: QP0 throttled to ~0 yet QP1 pinned near its 50% guarantee
    # instead of expanding toward line rate.
    return goodput[1] < 0.1 * line and goodput[2] < 0.62 * line


def detect_noisy_neighbor(nic: str) -> bool:
    result = run_test(noisy_neighbor_config(12, nic, seed=11))
    parts = split_mct(result.traffic_log, list(range(1, 13)))
    innocent = parts["others"]
    return innocent is not None and innocent.max_ns > 10_000_000


def detect_interop(nic: str) -> bool:
    # Does this NIC, as the sender, break a CX5 receiver at 16 QPs?
    result = run_test(interop_config(nic, "cx5", qps=16, seed=21))
    return result.responder_counters["rx_discards_phy"] > 0


def detect_counter_bug(nic: str) -> bool:
    from repro.core.config import DataPacketEvent, TrafficConfig
    from workloads import two_host_config

    # ECN path (cnpSent) + Read-loss path (implied_nak_seq_err).
    ecn_traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=2,
        message_size=10240, mtu=1024,
        data_pkt_events=(DataPacketEvent(1, 3, "ecn"),))
    read_traffic = TrafficConfig(
        num_connections=1, rdma_verb="read", num_msgs_per_qp=2,
        message_size=10240, mtu=1024,
        data_pkt_events=(DataPacketEvent(1, 2, "drop"),))
    for traffic in (ecn_traffic, read_traffic):
        result = run_test(two_host_config(nic, traffic, seed=9))
        if check_counters(result).mismatches:
            return True
    return False


def detect_cnp_rate_limiting(nic: str) -> bool:
    # Every NIC coalesces CNPs in some form (§6.3): with the interval
    # knob at 0, a hidden/residual floor or coalescing behaviour shows
    # as fewer CNPs than marks.
    from repro.core.analyzers import analyze_cnps

    result = run_test(cnp_interval_config(nic, configured_us=4, seed=31,
                                          messages=10))
    report = analyze_cnps(result.trace)
    return report.total_cnps < report.total_ecn_marked


def detect_adaptive_quirk(nic: str) -> bool:
    result = run_test(adaptive_retrans_config(nic, adaptive=True, drops=7,
                                              seed=41))
    meta = result.metadata[0]
    conn = (meta.requester_ip, meta.responder_ip, meta.responder_qpn)
    last_psn = (meta.requester_ipsn + 9) & 0xFFFFFF
    appearances = [p for p in result.trace.data_packets(conn)
                   if p.psn == last_psn]
    gaps_ms = [(b.timestamp_ns - a.timestamp_ns) / 1e6
               for a, b in zip(appearances, appearances[1:])]
    # The quirk: actual timeouts below the configured 67.1 ms minimum.
    return bool(gaps_ms) and min(gaps_ms) < 60.0


DETECTORS = {
    "non-work-conserving-ets": detect_ets_bug,
    "noisy-neighbor": detect_noisy_neighbor,
    "interoperability": detect_interop,
    "counter-inconsistency": detect_counter_bug,
    "cnp-rate-limiting": detect_cnp_rate_limiting,
    "adaptive-retransmission": detect_adaptive_quirk,
}


def build_matrix():
    return {bug: {nic: detector(nic) for nic in NICS}
            for bug, detector in DETECTORS.items()}


def test_tab02_bug_matrix(benchmark):
    matrix = build_matrix()
    lines = [f"{'bug / hidden behaviour':<28s}" + "".join(f"{n:>7s}" for n in NICS)
             + "   paper",
             "-" * 70]
    for bug, row in matrix.items():
        cells = "".join(f"{'X' if row[nic] else '.':>7s}" for nic in NICS)
        paper = ",".join(sorted(PAPER[bug]))
        lines.append(f"{bug:<28s}{cells}   {paper}")
    emit("tab02_bug_matrix", lines)

    # Affected sets must match the paper exactly.
    for bug, row in matrix.items():
        detected = {nic for nic, hit in row.items() if hit}
        assert detected == PAPER[bug], f"{bug}: {detected} != {PAPER[bug]}"

    benchmark.pedantic(detect_counter_bug, args=("e810",), rounds=1,
                       iterations=1)
