"""§3.4 — per-packet load balancing of the traffic dumper pool.

Paper: the initial two-host dumping design occasionally discarded
mirrored packets at line rate (flow-affine RSS concentrates a flow on
one core); the per-packet WRR + UDP-port-randomisation design raised
the complete-capture success ratio from ~30% to nearly 100%.
"""

from conftest import emit

from repro.core.config import (
    DumperPoolConfig,
    HostConfig,
    SwitchConfig,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import run_test

SEEDS = tuple(range(70, 82))


def run_capture(randomize_port: bool, num_servers: int, seed: int,
                ring_slots: int = 64, cores: int = 8,
                num_connections: int = 2):
    config = TestConfig(
        requester=HostConfig(nic_type="cx5", ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type="cx5", ip_list=("10.0.0.2/24",)),
        traffic=TrafficConfig(num_connections=num_connections,
                              rdma_verb="write",
                              num_msgs_per_qp=8, message_size=102400,
                              mtu=1024, barrier_sync=False, tx_depth=4),
        dumpers=DumperPoolConfig(num_servers=num_servers,
                                 cores_per_server=cores,
                                 ring_slots=ring_slots),
        switch=SwitchConfig(randomize_mirror_udp_port=randomize_port),
        seed=seed,
    )
    return run_test(config)


def success_ratio(randomize_port: bool, num_servers: int) -> float:
    """Complete-capture ratio over varied workloads.

    The flow count varies per run (1–3 connections), as it did in the
    paper's day-to-day usage: RSS without port randomisation depends on
    the number of flows for its core spread, so few-flow workloads are
    the ones the naive design loses.
    """
    ok = sum(run_capture(randomize_port, num_servers, seed,
                         num_connections=1 + seed % 3).integrity.ok
             for seed in SEEDS)
    return ok / len(SEEDS)


def test_sec34_success_ratio(benchmark):
    naive = success_ratio(randomize_port=False, num_servers=1)
    balanced = success_ratio(randomize_port=True, num_servers=1)
    pooled = success_ratio(randomize_port=True, num_servers=3)

    lines = [
        f"naive (per-direction host, flow-affine RSS): "
        f"{naive * 100:.0f}% complete captures",
        f"+ UDP port randomisation:                    "
        f"{balanced * 100:.0f}%",
        f"+ pooled dumpers (3 servers, WRR):           "
        f"{pooled * 100:.0f}%",
        "",
        "paper: success ratio improved from ~30% to nearly 100%",
    ]
    emit("sec34_dumper_lb", lines)

    assert naive <= 0.75
    assert balanced == 1.0
    assert pooled == 1.0

    benchmark.pedantic(run_capture, args=(True, 1, 70), rounds=2,
                       iterations=1)


def test_sec34_weak_pooled_servers(benchmark):
    """Flexibility claim: several weak hosts replace one fast host."""
    result = run_capture(True, num_servers=4, seed=70, cores=3)
    per_server = {}
    for pkt in result.trace:
        per_server[pkt.record.server] = per_server.get(pkt.record.server, 0) + 1
    lines = [f"4 weak servers (3 cores each): integrity "
             f"{'PASS' if result.integrity.ok else 'FAIL'}",
             f"records per server: {dict(sorted(per_server.items()))}"]
    emit("sec34_weak_pool", lines)
    assert result.integrity.ok
    assert len(per_server) == 4
    benchmark.pedantic(run_capture, args=(True, 4, 70), rounds=1,
                       iterations=1)
