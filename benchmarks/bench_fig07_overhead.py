"""Figure 7 — Lumina's impact on message completion time.

Paper: 1000 back-to-back messages of 1/10/100 KB on one connection,
comparing full Lumina against Lumina-nm (no mirroring), Lumina-ne (no
event injection) and plain L2 forwarding. Result: Lumina's MCT is only
4.1–7.2% above L2 forwarding; mirroring is essentially free.
"""

from conftest import emit
from workloads import two_host_config

from repro.core.config import SwitchConfig, TrafficConfig
from repro.core.orchestrator import run_test

MESSAGE_KB = (1, 10, 100)
VARIANTS = {
    "lumina": SwitchConfig(event_injection=True, mirroring=True),
    "lumina-nm": SwitchConfig(event_injection=True, mirroring=False),
    "lumina-ne": SwitchConfig(event_injection=False, mirroring=True),
    "l2-forward": SwitchConfig(event_injection=False, mirroring=False),
}


def run_variant(msg_kb: int, variant: str, messages: int = 200) -> float:
    """Average MCT (µs) for one (size, variant) cell."""
    switch = VARIANTS[variant]
    traffic = TrafficConfig(num_connections=1, rdma_verb="write",
                            num_msgs_per_qp=messages,
                            message_size=msg_kb * 1024, mtu=1024,
                            barrier_sync=False, tx_depth=1)
    config = two_host_config("cx6", traffic, seed=51, switch=switch,
                             dumpers=3 if switch.mirroring else 0)
    result = run_test(config)
    return (result.traffic_log.avg_mct_ns or 0) / 1e3


def test_fig07_overhead(benchmark):
    cells = {(kb, variant): run_variant(kb, variant)
             for kb in MESSAGE_KB for variant in VARIANTS}
    lines = ["size   " + "".join(f"{v:>12s}" for v in VARIANTS) + "  overhead",
             "-" * 70]
    for kb in MESSAGE_KB:
        row = [f"{kb:>3d}KB  "]
        for variant in VARIANTS:
            row.append(f"{cells[(kb, variant)]:>10.2f}us")
        overhead = cells[(kb, "lumina")] / cells[(kb, "l2-forward")] - 1
        row.append(f"  {overhead * 100:+5.1f}%")
        lines.append("".join(row))
    lines.append("")
    lines.append("paper: Lumina 4.1-7.2% above L2-forward; mirroring ~free")
    emit("fig07_overhead", lines)

    # Shape assertions: small overhead, mirroring negligible.
    for kb in MESSAGE_KB:
        ratio = cells[(kb, "lumina")] / cells[(kb, "l2-forward")]
        assert 1.0 <= ratio < 1.10
        mirror_cost = cells[(kb, "lumina")] / cells[(kb, "lumina-nm")]
        assert mirror_cost < 1.02

    benchmark.pedantic(run_variant, args=(1, "lumina", 50),
                       rounds=3, iterations=1)
