"""Seed-budget-to-rediscovery: coverage-guided vs blind fuzzing.

Two Table-2-style bugs are seeded behind multi-step mutation walks —
the noisy-neighbor behaviour (§6.2.2: the fuzzer must grow the
connection count from 2 and then spread simultaneous drops) and a
multi-counter inconsistency (§6.2.4: a single mismatch scores below
the threshold, so the fuzzer must compose event injections). For each
bug the same 10 fuzzer seeds hunt with the blind GA and with
coverage-guided fitness; the budget is the iteration of the first
finding (censored at the cap). Guided must rediscover each bug in
fewer total iterations — structural feedback keeps low-scoring
stepping stones in the pool that the blind GA discards.
"""

from conftest import emit

from repro import quick_config
from repro.core.fuzz import LuminaFuzzer, ScoreWeights
from repro.coverage import runtime as coverage

CAP = 60
SEEDS = range(1, 11)

#: name -> (base config, target-style weights, anomaly threshold).
BUGS = {
    "noisy-neighbor/cx4": (
        quick_config(nic="cx4", verb="read", num_msgs=2,
                     message_size=10240, num_connections=2, seed=1),
        ScoreWeights(innocent_inflation=10.0, unexplained_discards=4.0,
                     counter_inconsistency=0.5, mct_inflation=0.5),
        8.0),
    "counter-combo/e810": (
        quick_config(nic="e810", verb="write", num_msgs=2,
                     message_size=10240, num_connections=2, seed=1),
        ScoreWeights(counter_inconsistency=8.0, mct_inflation=0.2,
                     innocent_inflation=0.2),
        14.0),
}


def budget_to_discovery(base, weights, threshold, seed, guided):
    """Iterations until the first finding; CAP + 1 when censored."""
    if guided:
        coverage.enable()
    try:
        fuzzer = LuminaFuzzer(base, seed=seed, weights=weights,
                              anomaly_threshold=threshold)
        report = fuzzer.run(iterations=CAP, stop_on_first=True,
                            coverage_fitness=guided)
        return report.iterations_run if report.findings else CAP + 1
    finally:
        if guided:
            coverage.disable()


def sweep(base, weights, threshold, guided):
    return [budget_to_discovery(base, weights, threshold, seed, guided)
            for seed in SEEDS]


def test_fuzz_rediscovery_budget(benchmark):
    lines = [f"{'seeded bug':<22s}{'seed':>6s}{'blind':>8s}{'guided':>8s}",
             "-" * 44]
    totals = {}
    for name, (base, weights, threshold) in BUGS.items():
        blind = sweep(base, weights, threshold, guided=False)
        guided = sweep(base, weights, threshold, guided=True)
        for seed, b, g in zip(SEEDS, blind, guided):
            cell_b = str(b) if b <= CAP else f">{CAP}"
            cell_g = str(g) if g <= CAP else f">{CAP}"
            lines.append(f"{name:<22s}{seed:>6d}{cell_b:>8s}{cell_g:>8s}")
        totals[name] = (sum(blind), sum(guided))
        lines.append(f"{name:<22s}{'total':>6s}"
                     f"{totals[name][0]:>8d}{totals[name][1]:>8d}")
        lines.append("-" * 44)
    emit("fuzz_rediscovery_budget", lines)

    # The acceptance bar: for every seeded bug, the guided campaign
    # spends strictly fewer total iterations than the blind GA.
    for name, (blind_total, guided_total) in totals.items():
        assert guided_total < blind_total, (
            f"{name}: guided {guided_total} !< blind {blind_total}")

    base, weights, threshold = BUGS["noisy-neighbor/cx4"]
    benchmark.pedantic(budget_to_discovery,
                       args=(base, weights, threshold, 3, True),
                       rounds=1, iterations=1)
