"""Figure 8 — NACK generation latency vs PSN of the dropped packet.

Paper: 100 KB messages over one connection; drop the packet with a
given relative PSN and measure the receiver-side phase of Go-back-N
recovery. Write traffic: consistently low for all four NICs (2–10 µs).
Read traffic: CX5/CX6 stay ~2 µs, CX4 Lx ~150 µs, E810 ~83 ms.
"""

from conftest import emit
from workloads import retrans_sweep_config

from repro.core.analyzers import analyze_retransmissions
from repro.core.orchestrator import run_test

NICS = ("cx4", "cx5", "cx6", "e810")
DROP_PSNS = (1, 20, 40, 60, 80, 99)


def measure(nic: str, verb: str, drop_psn: int, seed: int = 0):
    seed = seed or (3 + drop_psn)  # vary jitter draws across sweep points
    result = run_test(retrans_sweep_config(nic, verb, drop_psn, seed))
    events = analyze_retransmissions(result.trace)
    assert len(events) == 1 and events[0].fast_retransmission
    return events[0]


def series(verb: str):
    return {nic: [measure(nic, verb, psn).nack_generation_ns / 1e3
                  for psn in DROP_PSNS]
            for nic in NICS}


def _render(verb: str, data) -> list:
    lines = [f"NACK generation latency (us), {verb} traffic",
             "dropped-psn " + "".join(f"{p:>10d}" for p in DROP_PSNS),
             "-" * 75]
    for nic in NICS:
        lines.append(f"{nic:>10s}  " + "".join(f"{v:>10.1f}" for v in data[nic]))
    return lines


def test_fig08a_write(benchmark):
    data = series("write")
    lines = _render("write", data)
    lines += ["", "paper: all NICs low and flat; CX5/CX6 ~2us, CX4 ~4us, "
                  "E810 ~10us"]
    emit("fig08a_nack_generation_write", lines)
    for nic in NICS:
        assert max(data[nic]) < 50  # all < 50 µs for Write
    assert max(data["cx5"]) < 10 and max(data["cx6"]) < 10

    benchmark.pedantic(measure, args=("cx5", "write", 50), rounds=3,
                       iterations=1)


def test_fig08b_read(benchmark):
    data = series("read")
    lines = _render("read", data)
    lines += ["", "paper: CX5/CX6 ~2us; CX4 ~150us; E810 ~83ms"]
    emit("fig08b_nack_generation_read", lines)
    assert max(data["cx5"]) < 10
    assert max(data["cx6"]) < 10
    assert all(100 < v < 250 for v in data["cx4"])          # ~150 µs
    assert all(60_000 < v < 110_000 for v in data["e810"])  # ~83 ms

    benchmark.pedantic(measure, args=("cx5", "read", 50), rounds=3,
                       iterations=1)
