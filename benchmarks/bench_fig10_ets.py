"""Figure 10 — goodput of two QPs under three ETS settings on CX6 Dx.

Paper: two QPs, 20×1 MB Writes each, DCQCN on, 100 Gbps CX6 Dx.

1. multi-queue vanilla: both ~50 Gbps (even split).
2. multi-queue + ECN on QP0: QP0 throttled, but QP1 *stays at ~50 Gbps*
   — the bug: it cannot use QP0's spare bandwidth from another queue.
3. single queue + ECN on QP0: QP1 expands to take the spare bandwidth.

We run CX6 (buggy, non-work-conserving) and CX5 (spec-compliant) so the
baseline shows what setting 2 should have looked like.
"""

from conftest import emit
from workloads import ets_config

from repro.core.analyzers import per_qp_goodput_gbps
from repro.core.orchestrator import run_test

SETTINGS = ("multi_vanilla", "multi_ecn", "single_ecn")


def measure(nic: str, setting: str, seed: int = 5):
    result = run_test(ets_config(nic, setting, seed))
    assert result.integrity.ok
    return per_qp_goodput_gbps(result.traffic_log)


def test_fig10_ets_goodput(benchmark):
    rows = {(nic, s): measure(nic, s) for nic in ("cx6", "cx5")
            for s in SETTINGS}
    lines = ["goodput (Gbps)        QP0     QP1", "-" * 42]
    for (nic, setting), goodput in rows.items():
        lines.append(f"{nic} {setting:<14s} {goodput[1]:6.1f}  {goodput[2]:6.1f}")
    lines += [
        "",
        "paper (CX6 Dx): vanilla ~47/47; multi-queue+ECN leaves QP1 at",
        "its 50% guarantee (non-work-conserving bug); single-queue+ECN",
        "lets QP1 take the spare bandwidth",
    ]
    emit("fig10_ets_goodput", lines)

    cx6 = {s: rows[("cx6", s)] for s in SETTINGS}
    cx5 = {s: rows[("cx5", s)] for s in SETTINGS}

    # Setting 1: even split around half line rate on both NICs.
    for data in (cx6, cx5):
        assert abs(data["multi_vanilla"][1] - data["multi_vanilla"][2]) < 8
        assert 35 < data["multi_vanilla"][1] < 55

    # Setting 2: the CX6 bug — QP1 pinned near its guarantee.
    assert cx6["multi_ecn"][1] < 10          # QP0 throttled by DCQCN
    assert cx6["multi_ecn"][2] < 60          # QP1 can NOT expand
    # CX5 control: QP1 takes the spare bandwidth (work conserving).
    assert cx5["multi_ecn"][2] > 75

    # Setting 3: single queue — QP1 expands even on CX6.
    assert cx6["single_ecn"][2] > 75

    benchmark.pedantic(measure, args=("cx6", "multi_ecn"), rounds=1,
                       iterations=1)


def test_fig10_ablation_work_conserving_flag(benchmark):
    """Ablation (DESIGN.md): the bug is exactly the scheduler flag.

    Running the identical scenario on a CX6 profile with work
    conservation forced on restores the CX5 behaviour.
    """
    from repro.core.testbed import build_testbed
    from repro.core.trafficgen import TrafficSession
    from repro.rdma.profiles import CX6_DX

    config = ets_config("cx6", "multi_ecn", seed=5)
    testbed = build_testbed(config)
    # Swap in the patched scheduler before any QPs are created.
    data_sender = testbed.requester.nic
    data_sender.ets.work_conserving = True

    from repro.core.intent import expand_periodic_events, translate_events

    session = TrafficSession(testbed, config.traffic)
    session.connect_all()
    session.configure_ets()
    data_sender.ets.work_conserving = True  # configure_ets reinstalls
    events = expand_periodic_events(config.traffic, config.traffic.periodic_events)
    testbed.switch_controller.install_events(
        translate_events(session.metadata, events))
    session.start()
    testbed.sim.run(until=config.max_duration_ns)

    goodput = per_qp_goodput_gbps(session.log)
    lines = [f"CX6 + work-conserving scheduler: QP0={goodput[1]:.1f} "
             f"QP1={goodput[2]:.1f} Gbps",
             "expectation: QP1 expands like CX5 (>75 Gbps)"]
    emit("fig10_ablation_work_conserving", lines)
    assert goodput[2] > 75
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
