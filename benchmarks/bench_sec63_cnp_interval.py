"""§6.3 — CNP generation interval.

Paper: NVIDIA NICs coalesce CNPs according to the configurable
``min_time_between_cnps`` (default 4 µs). Intel E810 exposes no such
knob, yet marking every packet reveals a hidden ~50 µs minimum interval
between its CNPs — confirmed by Intel.
"""

from conftest import emit
from workloads import cnp_interval_config

from repro.core.analyzers import analyze_cnps, min_cnp_interval_ns
from repro.core.orchestrator import run_test

NICS = ("cx4", "cx5", "cx6", "e810")


def measure(nic: str, configured_us: int, seed: int = 31):
    result = run_test(cnp_interval_config(nic, configured_us, seed))
    report = analyze_cnps(result.trace)
    interval = min_cnp_interval_ns(result.trace)
    return {
        "min_interval_us": (interval or 0) / 1e3,
        "cnps": report.total_cnps,
        "marked": report.total_ecn_marked,
    }


def test_sec63_cnp_interval(benchmark):
    rows = {(nic, cfg): measure(nic, cfg)
            for nic in NICS for cfg in (4, 0)}
    lines = ["nic    configured   observed-min-interval   cnps/marked",
             "-" * 60]
    for (nic, cfg), m in rows.items():
        lines.append(f"{nic:>4s}   {cfg:>7d}us   {m['min_interval_us']:>18.2f}us"
                     f"   {m['cnps']}/{m['marked']}")
    lines += ["", "paper: NVIDIA honours the knob (4us default; 0 disables",
              "coalescing); E810 ignores it and enforces a hidden ~50us",
              "interval"]
    emit("sec63_cnp_interval", lines)

    # NVIDIA NICs honour the configuration.
    for nic in ("cx4", "cx5", "cx6"):
        assert rows[(nic, 4)]["min_interval_us"] >= 3.5
        assert rows[(nic, 0)]["min_interval_us"] < 3.5  # coalescing off
    # E810: hidden floor regardless of the (ignored) setting.
    assert rows[("e810", 4)]["min_interval_us"] >= 45
    assert rows[("e810", 0)]["min_interval_us"] >= 45

    benchmark.pedantic(measure, args=("e810", 0), rounds=2, iterations=1)
