"""Shared infrastructure for the benchmark harness.

Every bench file regenerates one table or figure from the paper's
evaluation. Besides the pytest-benchmark timing, each bench writes its
paper-vs-measured series to ``benchmarks/results/<name>.txt`` (and
prints it) so the reproduction numbers survive output capturing.

Set ``REPRO_BENCH_TELEMETRY=1`` to run the whole bench session under a
telemetry session: each :func:`emit` then also snapshots the metrics
registry next to the result table, and the full trace is exported to
``benchmarks/results/telemetry/`` at session end.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_TELEMETRY_ON = os.environ.get("REPRO_BENCH_TELEMETRY") == "1"


def emit(name: str, lines) -> str:
    """Print and persist one bench's result table."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    from repro.telemetry import runtime as telemetry

    session = telemetry.active()
    if session is not None:
        from repro.telemetry.export import to_prometheus

        (RESULTS_DIR / f"{name}.metrics.prom").write_text(
            to_prometheus(session.registry))
    return text


@pytest.fixture(scope="session", autouse=_TELEMETRY_ON)
def bench_telemetry():
    """Session-wide telemetry, gated on REPRO_BENCH_TELEMETRY=1."""
    from repro.telemetry import runtime as telemetry

    out_dir = RESULTS_DIR / "telemetry"
    with telemetry.session(str(out_dir), export_on_exit=True) as session:
        yield session


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
