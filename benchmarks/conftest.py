"""Shared infrastructure for the benchmark harness.

Every bench file regenerates one table or figure from the paper's
evaluation. Besides the pytest-benchmark timing, each bench writes its
paper-vs-measured series to ``benchmarks/results/<name>.txt`` (and
prints it) so the reproduction numbers survive output capturing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, lines) -> str:
    """Print and persist one bench's result table."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
