"""§6.2.3 — interoperability problem between CX5 and E810.

Paper: Send traffic from E810 to CX5, five 100 KB messages per QP,
varying QP count. At 16 QPs the CX5 receiver discards ~500 RX packets
(rx_discards_phy), mostly on each QP's *first* message; affected
messages complete in ~20 ms (timeouts) vs 156 µs clean. CX5→CX5 under
identical settings is clean, and rewriting MigReq=1 at the switch
removes the problem entirely.
"""

from conftest import emit
from workloads import interop_config

from repro.core.orchestrator import Orchestrator, run_test
from repro.switch.events import RewriteRule

QP_SWEEP = (2, 8, 15, 16, 24, 32)


def measure(req_nic: str, resp_nic: str, qps: int, fix: bool = False,
            seed: int = 21):
    config = interop_config(req_nic, resp_nic, qps, seed)
    rules = [RewriteRule(field_name="migreq", value=1)] if fix else None
    result = Orchestrator(config, rewrite_rules=rules).run()
    messages = [m for m in result.traffic_log.all_messages if m.ok]
    slow = [m.completion_time_ns for m in messages
            if m.completion_time_ns > 1_000_000]
    clean = [m.completion_time_ns for m in messages
             if m.completion_time_ns <= 1_000_000]
    return {
        "rx_discards": result.responder_counters["rx_discards_phy"],
        "clean_mct_us": (sum(clean) / len(clean) / 1e3) if clean else 0.0,
        "slow_mct_us": (sum(slow) / len(slow) / 1e3) if slow else 0.0,
        "slow_msgs": len(slow),
        "aborted": result.traffic_log.aborted_qps,
    }


def test_sec623_interop_qp_sweep(benchmark):
    sweep = {qps: measure("e810", "cx5", qps) for qps in QP_SWEEP}
    control = measure("cx5", "cx5", 16)
    fixed = measure("e810", "cx5", 16, fix=True)

    lines = ["e810 -> cx5 Send, five 100KB msgs/QP",
             "qps   rx_discards  clean-MCT     slow-MCT  slow-msgs",
             "-" * 58]
    for qps, m in sweep.items():
        lines.append(f"{qps:>3d}   {m['rx_discards']:>10d}  "
                     f"{m['clean_mct_us']:>8.1f}us  {m['slow_mct_us']:>9.1f}us"
                     f"  {m['slow_msgs']:>6d}")
    lines += [
        f"cx5->cx5 @16:    {control['rx_discards']:>6d} discards, "
        f"clean MCT {control['clean_mct_us']:.1f}us",
        f"fix(MigReq=1):   {fixed['rx_discards']:>6d} discards, "
        f"clean MCT {fixed['clean_mct_us']:.1f}us",
        "",
        "paper: ~500 discards at 16 QPs, drops on first messages, MCT",
        "156us clean vs 20460us affected; clean for cx5->cx5; fixed by",
        "the MigReq rewrite action",
    ]
    emit("sec623_interop", lines)

    # Shape: clean below the context-table limit, broken at >= 16,
    # worsening with QP count.
    for qps in (2, 8, 15):
        assert sweep[qps]["rx_discards"] == 0
    assert sweep[16]["rx_discards"] > 0
    assert sweep[32]["rx_discards"] > sweep[16]["rx_discards"]
    # Affected messages suffer timeout-scale MCTs; clean ones ~150 µs.
    assert sweep[16]["slow_mct_us"] > 10_000
    assert 50 < sweep[16]["clean_mct_us"] < 400
    # Controls.
    assert control["rx_discards"] == 0
    assert fixed["rx_discards"] == 0

    benchmark.pedantic(measure, args=("e810", "cx5", 16), rounds=1,
                       iterations=1)


def test_sec623_drops_concentrate_on_first_messages(benchmark):
    config = interop_config("e810", "cx5", 16, seed=22)
    result = run_test(config)
    slow = [m for m in result.traffic_log.all_messages
            if m.ok and m.completion_time_ns > 1_000_000]
    lines = [f"slow messages: {len(slow)}, msg indices: "
             f"{sorted({m.msg_index for m in slow})}",
             "paper: most packet drops happen on the first message of "
             "each QP"]
    emit("sec623_first_message_drops", lines)
    assert slow and all(m.msg_index == 0 for m in slow)
    benchmark.pedantic(run_test, args=(config,), rounds=1, iterations=1)
