"""§5 — event injector resource usage and data-path overhead.

Paper claims for the Tofino prototype:

* occupies 4 pipeline stages;
* ~1 MB of on-chip memory injects up to 100 K events for 10 K
  connections;
* sustains line rate with lossless mirroring under pressure testing;
* adds <0.4 µs latency to the data path.

This bench verifies each claim against the switch model and also
benchmarks the simulator's raw packet-processing throughput.
"""

import time

from conftest import emit
from workloads import two_host_config

from repro.core.config import TrafficConfig
from repro.core.orchestrator import run_test
from repro.net.link import gbps
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.switch.events import EventEntry
from repro.switch.pipeline import PIPELINE_STAGES, TofinoSwitch


def build_loaded_switch(events: int = 100_000, connections: int = 10_000):
    switch = TofinoSwitch(Simulator(), "sw", SimRandom(1),
                          event_table_capacity=events + 1)
    per_conn = events // connections
    for conn in range(connections):
        for k in range(per_conn):
            switch.install_event(EventEntry(
                src_ip=conn + 1, dst_ip=0x0A000002, dst_qpn=conn + 1,
                psn=1000 + k, iteration=1, action="drop"))
        switch.iter_tracker.update(conn + 1, 0x0A000002, conn + 1, 999)
    return switch


def test_sec5_resource_claims(benchmark):
    switch = build_loaded_switch()
    table_mb = switch.event_table.memory_bytes / 1e6
    iter_mb = switch.iter_tracker.memory_bytes / 1e6
    lines = [
        f"pipeline stages: {PIPELINE_STAGES} (paper: 4)",
        f"event table: {len(switch.event_table)} entries, {table_mb:.2f} MB",
        f"ITER tracker: {len(switch.iter_tracker)} connections, "
        f"{iter_mb:.2f} MB",
        f"total on-chip memory: {table_mb + iter_mb:.2f} MB "
        f"(paper: ~1 MB for 100K events / 10K connections)",
        f"pipeline latency: {switch.pipeline_latency_ns} ns (paper: <400 ns)",
    ]
    emit("sec5_switch_resources", lines)

    assert PIPELINE_STAGES == 4
    assert len(switch.event_table) == 100_000
    assert len(switch.iter_tracker) == 10_000
    assert 0.5 <= table_mb + iter_mb <= 2.0
    assert switch.pipeline_latency_ns < 400

    benchmark.pedantic(build_loaded_switch, args=(10_000, 1_000),
                       rounds=3, iterations=1)


def test_sec5_lossless_mirroring_under_pressure(benchmark):
    """Pressure test: full line rate, every packet mirrored, zero loss."""
    traffic = TrafficConfig(num_connections=4, rdma_verb="write",
                            num_msgs_per_qp=25, message_size=102400,
                            mtu=1024, barrier_sync=False, tx_depth=4)
    config = two_host_config("cx6", traffic, seed=61, dumpers=3)
    result = run_test(config)

    ports = result.switch_counters["ports"]
    drops = sum(p["tx_drops"] for p in ports.values())
    lines = [
        f"RoCE packets through switch: {result.switch_counters['roce_rx_packets']}",
        f"mirrored: {result.switch_counters['mirrored_packets']}",
        f"switch port drops: {drops}",
        f"integrity: {result.integrity.summary()}",
        "paper: switch delivers and mirrors all packets without loss",
    ]
    emit("sec5_pressure_test", lines)

    assert drops == 0
    assert result.integrity.ok
    assert (result.switch_counters["mirrored_packets"]
            == result.switch_counters["roce_rx_packets"])

    benchmark.pedantic(run_test, args=(config,), rounds=1, iterations=1)


def test_sec5_stateless_vs_stateful_ablation(benchmark):
    """Ablation: the stateless intent translation design (§3.3).

    Lumina pushes runtime metadata through the control plane instead of
    learning QPs in the data plane. The ablation quantifies what the
    stateful alternative would cost in switch state: learning requires
    a connection table keyed by (src, dst, QPN) *plus* per-connection
    IPSN registers before any event can be resolved, roughly doubling
    per-connection memory and adding a learn action to the hot path.
    """
    switch = build_loaded_switch(events=10_000, connections=1_000)
    stateless_bytes = switch.event_table.memory_bytes + \
        switch.iter_tracker.memory_bytes
    # Stateful estimate: +13 B per connection (12 B key + IPSN register
    # + valid bit packed) on top of everything stateless already needs.
    stateful_bytes = stateless_bytes + len(switch.iter_tracker) * 13
    lines = [
        f"stateless design: {stateless_bytes / 1e3:.1f} KB switch state",
        f"stateful learning alternative: {stateful_bytes / 1e3:.1f} KB "
        f"(+{(stateful_bytes / stateless_bytes - 1) * 100:.0f}%)",
        "conclusion: control-plane metadata keeps the data plane simple",
    ]
    emit("sec5_stateless_ablation", lines)
    assert stateful_bytes > stateless_bytes
    benchmark.pedantic(build_loaded_switch, args=(10_000, 1_000),
                       rounds=3, iterations=1)


def test_sec5_simulator_throughput(benchmark):
    """Raw engine speed: packets simulated per wall-clock second."""
    traffic = TrafficConfig(num_connections=1, rdma_verb="write",
                            num_msgs_per_qp=50, message_size=102400,
                            mtu=1024, barrier_sync=False, tx_depth=4)
    config = two_host_config("cx6", traffic, seed=62, dumpers=2)

    start = time.perf_counter()
    result = run_test(config)
    elapsed = time.perf_counter() - start
    pps = len(result.trace) / elapsed
    emit("sec5_simulator_throughput",
         [f"{len(result.trace)} packets in {elapsed:.2f} s "
          f"({pps / 1e3:.0f} Kpps simulated)"])
    assert pps > 1_000

    benchmark.pedantic(run_test, args=(config,), rounds=2, iterations=1)
