"""§6.3 — unexpected timeouts/retries in adaptive retransmission mode.

Paper: with ``timeout=14`` (minimum RTO 67.1 ms) and ``retry_cnt=7``,
NVIDIA NICs in adaptive mode (a) use *smaller* timeouts than the
configured minimum for early retries — CX6 Dx's measured ladder when
the last packet of the first message is dropped 7 times is
5.6 / 4.1 / 8.4 / 16.7 / 25.1 / 67.1 / 134.2 ms — and (b) retry 8–13
times instead of 7. Disabling adaptive mode restores IB-spec behaviour.
E810 does not implement the feature.
"""

from conftest import emit
from workloads import adaptive_retrans_config

from repro.core.orchestrator import run_test

PAPER_LADDER_MS = (5.6, 4.1, 8.4, 16.7, 25.1, 67.1, 134.2)


def timeout_ladder_ms(nic: str, adaptive: bool, seed: int = 41):
    result = run_test(adaptive_retrans_config(nic, adaptive, drops=7,
                                              seed=seed))
    meta = result.metadata[0]
    conn = (meta.requester_ip, meta.responder_ip, meta.responder_qpn)
    last_psn = (meta.requester_ipsn + 9) & 0xFFFFFF
    appearances = [p for p in result.trace.data_packets(conn)
                   if p.psn == last_psn]
    return [(b.timestamp_ns - a.timestamp_ns) / 1e6
            for a, b in zip(appearances, appearances[1:])]


def retry_attempts(nic: str, adaptive: bool, seed: int):
    # Drop every round: the QP must exhaust its retry budget.
    result = run_test(adaptive_retrans_config(nic, adaptive, drops=14,
                                              seed=seed, timeout_cfg=10))
    return (result.requester_counters["local_ack_timeout_err"],
            result.traffic_log.aborted_qps)


def test_sec63_timeout_ladder(benchmark):
    adaptive = timeout_ladder_ms("cx6", adaptive=True)
    spec = timeout_ladder_ms("cx6", adaptive=False)
    e810 = timeout_ladder_ms("e810", adaptive=True)

    lines = ["retry#      paper-adaptive   cx6-adaptive   cx6-spec   e810",
             "-" * 64]
    for i in range(7):
        lines.append(f"{i + 1:>5d}   {PAPER_LADDER_MS[i]:>13.1f}ms"
                     f"   {adaptive[i]:>10.1f}ms   {spec[i]:>6.1f}ms"
                     f"   {e810[i]:>5.1f}ms")
    lines += ["", "paper: adaptive timeouts violate the 67.1ms configured",
              "minimum early on; spec mode is constant 67.1ms"]
    emit("sec63_adaptive_ladder", lines)

    assert len(adaptive) == 7
    for got, want in zip(adaptive, PAPER_LADDER_MS):
        assert abs(got - want) < max(1.0, want * 0.06)
    assert all(abs(g - 67.1) < 1.0 for g in spec)
    assert all(abs(g - 67.1) < 1.0 for g in e810)  # no adaptive mode

    benchmark.pedantic(timeout_ladder_ms, args=("cx6", False), rounds=1,
                       iterations=1)


def test_sec63_retry_count_extension(benchmark):
    seeds = (42, 43, 44, 45)
    adaptive_counts = [retry_attempts("cx6", True, s)[0] for s in seeds]
    spec_counts = [retry_attempts("cx6", False, s)[0] for s in seeds]

    lines = [f"retry_cnt=7; attempts observed across seeds {list(seeds)}:",
             f"  adaptive: {adaptive_counts}",
             f"  spec:     {spec_counts}",
             "", "paper: retry_cnt=7 observed as 8-13 retries in adaptive",
             "mode; exactly per-spec otherwise"]
    emit("sec63_adaptive_retries", lines)

    assert all(c == 8 for c in spec_counts)  # 7 retries + failing 8th
    assert all(9 <= c <= 14 for c in adaptive_counts)
    assert len(set(adaptive_counts)) > 1     # varies run to run

    benchmark.pedantic(retry_attempts, args=("cx6", True, 42), rounds=1,
                       iterations=1)
