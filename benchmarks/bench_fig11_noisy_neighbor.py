"""Figure 11 — noisy neighbor on CX4 Lx.

Paper: 36 Read connections, ten 20 KB messages each; drop the 5th data
packet of the first *i* connections (i = 0, 8, 12, 16). At i >= 12 the
whole NIC RX pipeline stalls, innocent flows lose packets
(rx_discards_phy) and suffer retransmission timeouts: their average MCT
jumps from ~160 µs to hundreds of ms.
"""

from conftest import emit
from workloads import noisy_neighbor_config

from repro.core.analyzers import split_mct
from repro.core.orchestrator import run_test

INJECTED = (0, 8, 12, 16)


def measure(injected: int, nic: str = "cx4", seed: int = 11):
    result = run_test(noisy_neighbor_config(injected, nic, seed))
    parts = split_mct(result.traffic_log, list(range(1, injected + 1)))
    return {
        "injected_avg_ms": (parts["selected"].mean_ms
                            if parts["selected"] else 0.0),
        "innocent_avg_ms": (parts["others"].mean_ms
                            if parts["others"] else 0.0),
        "innocent_max_ms": ((parts["others"].max_ns / 1e6)
                            if parts["others"] else 0.0),
        "rx_discards": result.requester_counters["rx_discards_phy"],
    }


def test_fig11_noisy_neighbor(benchmark):
    cx4 = {i: measure(i) for i in INJECTED}
    control = measure(16, nic="cx5")

    lines = ["flows  injected-avg  innocent-avg  innocent-max  rx_discards",
             "-" * 64]
    for i in INJECTED:
        m = cx4[i]
        lines.append(f"{i:>5d}  {m['injected_avg_ms']:>10.3f}ms"
                     f"  {m['innocent_avg_ms']:>10.3f}ms"
                     f"  {m['innocent_max_ms']:>10.3f}ms"
                     f"  {m['rx_discards']:>10d}")
    lines += [
        f"cx5@16 {control['injected_avg_ms']:>10.3f}ms"
        f"  {control['innocent_avg_ms']:>10.3f}ms"
        f"  {control['innocent_max_ms']:>10.3f}ms"
        f"  {control['rx_discards']:>10d}",
        "",
        "paper (CX4 Lx): innocent ~0.16ms up to i=8; ~430ms average at",
        "i>=12 with ~1e7 rx_discards_phy. Shape reproduced: the cliff at",
        "i=12 (innocent flows hit full RTO) and discards at the",
        "requester; absolute magnitudes are smaller because the stall",
        "model triggers once rather than cascading.",
    ]
    emit("fig11_noisy_neighbor", lines)

    # Below the threshold: innocent flows unaffected (~160 µs, 0 drops).
    for i in (0, 8):
        assert cx4[i]["innocent_max_ms"] < 1.0
        assert cx4[i]["rx_discards"] == 0
    # At/above the threshold: timeouts + discards on innocent flows.
    for i in (12, 16):
        assert cx4[i]["innocent_max_ms"] > 10.0
        assert cx4[i]["rx_discards"] > 100
    # Control NIC shows nothing.
    assert control["innocent_max_ms"] < 1.0
    assert control["rx_discards"] == 0

    benchmark.pedantic(measure, args=(12,), rounds=1, iterations=1)
