"""Telemetry & coverage overhead — the disabled paths must stay free.

The instrumentation contract (see ``repro/telemetry/__init__`` and
``repro/coverage/__init__``) is that a run with telemetry or coverage
disabled pays only one no-op method call per instrumented operation,
and the engine's probe branch reduces to a single ``is not None`` test
per event. This bench quantifies both planes:

* measures the per-packet wall cost of the §5 throughput workload with
  telemetry and coverage disabled (the default, i.e. what every test
  and user run pays);
* measures the cost of the no-op metric calls a packet's path performs
  and asserts their share of the per-packet budget stays under 5%;
* measures the cost of the no-op coverage ``hit()`` / flight-recorder
  ``note()`` calls the same path performs and asserts the same 5%
  bound — clean runs must not pay for the coverage map;
* reports the enabled-mode cost of each plane alongside for context
  (enabled runs pay for real counters/map updates — that cost is
  accepted, not bounded).
"""

import time

from conftest import emit
from workloads import two_host_config

from repro.core.config import TrafficConfig
from repro.core.orchestrator import run_test
from repro.coverage import runtime as coverage
from repro.coverage.recorder import NULL_RECORDER
from repro.coverage.runtime import NULL_DOMAIN
from repro.telemetry import runtime as telemetry
from repro.telemetry.metrics import NULL_COUNTER, NULL_GAUGE

#: Upper bound on no-op telemetry calls along one packet's path through
#: switch (rx/lookup/match/tx), mirror (counter + gauge), dumper and
#: NIC (timer arm/cancel, pacing): counted from the instrumented sites.
NOOP_CALLS_PER_PACKET = 16

#: Upper bound on no-op coverage calls per packet: switch table lookup,
#: iteration tracking, mirror clone, pipeline stage, GBN accept/ack on
#: the RNIC plus a flight-recorder note — counted from the ``.hit()``
#: and ``.note()`` sites a data packet can cross.
COVERAGE_CALLS_PER_PACKET = 8

#: The contract this bench enforces (per plane).
MAX_DISABLED_OVERHEAD = 0.05


def _throughput_config(seed: int):
    traffic = TrafficConfig(num_connections=1, rdma_verb="write",
                            num_msgs_per_qp=50, message_size=102400,
                            mtu=1024, barrier_sync=False, tx_depth=4)
    return two_host_config("cx6", traffic, seed=seed, dumpers=2)


def _time_run(config) -> tuple:
    start = time.perf_counter_ns()
    result = run_test(config)
    elapsed_ns = time.perf_counter_ns() - start
    return elapsed_ns, len(result.trace)


def _noop_call_cost_ns(calls: int = 2_000_000) -> float:
    """Wall cost of one disabled-mode metric call, measured hot."""
    inc = NULL_COUNTER.inc
    set_ = NULL_GAUGE.set
    start = time.perf_counter_ns()
    for _ in range(calls // 2):
        inc()
        set_(0)
    return (time.perf_counter_ns() - start) / calls


def _noop_coverage_call_cost_ns(calls: int = 2_000_000) -> float:
    """Wall cost of one disabled-mode coverage call, measured hot."""
    hit = NULL_DOMAIN.hit
    note = NULL_RECORDER.note
    start = time.perf_counter_ns()
    for _ in range(calls // 2):
        hit("p", 0)
        note(0, "e")
    return (time.perf_counter_ns() - start) / calls


def test_telemetry_disabled_overhead(benchmark):
    telemetry.disable()  # belt and braces: the default state
    _time_run(_throughput_config(62))  # warm caches / JIT-free steady state
    disabled_ns, packets = _time_run(_throughput_config(62))
    per_packet_ns = disabled_ns / packets

    noop_ns = _noop_call_cost_ns()
    noop_share = NOOP_CALLS_PER_PACKET * noop_ns / per_packet_ns

    telemetry.enable()
    try:
        enabled_ns, _ = _time_run(_throughput_config(62))
    finally:
        telemetry.disable()

    lines = [
        f"workload: {packets} packets through the §5 throughput config",
        f"disabled-telemetry run: {disabled_ns / 1e6:.1f} ms "
        f"({per_packet_ns:.0f} ns/packet)",
        f"no-op metric call: {noop_ns:.1f} ns "
        f"(x{NOOP_CALLS_PER_PACKET}/packet = {noop_share * 100:.2f}% "
        f"of the packet budget; bound: {MAX_DISABLED_OVERHEAD * 100:.0f}%)",
        f"enabled-telemetry run: {enabled_ns / 1e6:.1f} ms "
        f"({enabled_ns / disabled_ns:.2f}x disabled)",
    ]
    emit("telemetry_overhead", lines)

    assert noop_share < MAX_DISABLED_OVERHEAD, (
        f"disabled-telemetry no-op calls cost {noop_share * 100:.2f}% "
        f"of the per-packet budget (limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)")

    benchmark.pedantic(run_test, args=(_throughput_config(62),),
                       rounds=2, iterations=1)


def test_coverage_disabled_overhead(benchmark):
    coverage.disable()  # belt and braces: the default state
    telemetry.disable()
    _time_run(_throughput_config(63))  # warm caches / JIT-free steady state
    disabled_ns, packets = _time_run(_throughput_config(63))
    per_packet_ns = disabled_ns / packets

    noop_ns = _noop_coverage_call_cost_ns()
    noop_share = COVERAGE_CALLS_PER_PACKET * noop_ns / per_packet_ns

    coverage.enable()
    try:
        enabled_ns, _ = _time_run(_throughput_config(63))
        points = len(coverage.current().total_snapshot())
    finally:
        coverage.disable()

    lines = [
        f"workload: {packets} packets through the §5 throughput config",
        f"disabled-coverage run: {disabled_ns / 1e6:.1f} ms "
        f"({per_packet_ns:.0f} ns/packet)",
        f"no-op coverage call: {noop_ns:.1f} ns "
        f"(x{COVERAGE_CALLS_PER_PACKET}/packet = {noop_share * 100:.2f}% "
        f"of the packet budget; bound: {MAX_DISABLED_OVERHEAD * 100:.0f}%)",
        f"enabled-coverage run: {enabled_ns / 1e6:.1f} ms "
        f"({enabled_ns / disabled_ns:.2f}x disabled), "
        f"{points} coverage point(s) recorded",
    ]
    emit("coverage_overhead", lines)

    assert noop_share < MAX_DISABLED_OVERHEAD, (
        f"disabled-coverage no-op calls cost {noop_share * 100:.2f}% "
        f"of the per-packet budget (limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)")

    benchmark.pedantic(run_test, args=(_throughput_config(63),),
                       rounds=2, iterations=1)
