"""Extension bench — incast at a genuine fan-in bottleneck.

The paper's two-host testbed emulates multi-host traffic with
multi-GID; this bench uses the N-to-1 extension topology to study the
scenario the paper's findings keep pointing at (incast congestion,
§6.2.2) under three buffering/control regimes:

1. deep buffers, no control  — full throughput, fair, no loss;
2. shallow buffers, no control — tail drops + Go-back-N storms and
   fairness collapse (why lossy RoCE needs good retransmission);
3. DCQCN with organic ECN marking — lossless via backpressure, fair,
   at the cost of DCQCN's slow rate recovery.
"""

from conftest import emit

from repro.core.incast import IncastConfig, run_incast

SENDERS = 4


def run_regime(regime: str, seed: int = 55):
    kwargs = {}
    if regime == "shallow":
        kwargs["receiver_queue_bytes"] = 200 * 1024
    elif regime == "dcqcn":
        kwargs["ecn_threshold_kb"] = 100
    config = IncastConfig(num_senders=SENDERS, nic_type="cx6",
                          num_msgs_per_sender=8, message_size=256 * 1024,
                          seed=seed, **kwargs)
    return run_incast(config)


def test_ext_incast_regimes(benchmark):
    regimes = {name: run_regime(name) for name in ("deep", "shallow", "dcqcn")}

    lines = ["4x100G senders -> 1x100G receiver, 8x256KB Writes each",
             "regime    aggregate  fairness  retransmits  queue-marks  drops",
             "-" * 66]
    for name, result in regimes.items():
        ports = result.switch_counters["ports"]
        drops = sum(p["tx_drops"] for p in ports.values())
        lines.append(
            f"{name:<9s}{result.aggregate_goodput_bps / 1e9:>8.1f}G"
            f"{result.fairness:>10.2f}"
            f"{sum(result.per_sender_retransmits.values()):>13d}"
            f"{result.switch_counters['ecn_marked_by_queue']:>13d}"
            f"{drops:>7d}")
    lines += ["",
              "deep: output-queued fan-in shares the bottleneck fairly;",
              "shallow: drops + Go-back-N replays wreck fairness;",
              "dcqcn: marking bounds the queue (no loss) but the paper-",
              "faithful slow rate recovery costs throughput in short runs"]
    emit("ext_incast", lines)

    deep, shallow, dcqcn = (regimes[n] for n in ("deep", "shallow", "dcqcn"))
    assert deep.aggregate_goodput_bps > 85e9
    assert deep.fairness > 0.95
    assert sum(shallow.per_sender_retransmits.values()) > 100
    assert shallow.fairness < deep.fairness - 0.2
    assert dcqcn.switch_counters["ecn_marked_by_queue"] > 0
    assert sum(dcqcn.per_sender_retransmits.values()) == 0

    benchmark.pedantic(run_regime, args=("deep",), rounds=2, iterations=1)
